module Node_env = Ci_engine.Node_env
module Sim_time = Ci_engine.Sim_time
module Command = Ci_rsm.Command

type config = {
  replicas : int array;
  initial_actives : int list;
  acceptor_timeout : Sim_time.t;
  check_period : Sim_time.t;
  reconfig_timeout : Sim_time.t;
}

let default_config ~replicas =
  let n = Array.length replicas in
  if n < 1 then invalid_arg "Cheap_paxos.default_config: need replicas";
  let f = (n - 1) / 2 in
  {
    replicas;
    initial_actives = Array.to_list (Array.sub replicas 0 (f + 1));
    acceptor_timeout = Sim_time.us 800;
    check_period = Sim_time.us 200;
    reconfig_timeout = Sim_time.us 800;
  }

type round = { v : Wire.value; mutable acks : int list }

type t = {
  env : Wire.t Node_env.t;
  cfg : config;
  self : int;
  core : Replica_core.t;
  mutable pu : Paxos_utility.t option; (* set in [create], always Some *)
  (* Current epoch: the configuration-log slot of the last applied
     Epoch_change, its active set (head = leader), and whether this
     node, as the epoch's leader, has received the state handoff that
     lets it propose. *)
  mutable cur_epoch : int;
  mutable cur_actives : int list;
  mutable ready : bool;
  (* Chain of custody for the acceptor store: [covering] means this
     node's [acc_store] provably holds every value any epoch up to
     [cur_epoch] can have chosen, so the node may vouch for history —
     hand its store to a new leader, or propose as one.  Bootstrap
     actives are covering (there is no history yet); a leader that
     becomes ready from a covering basis is covering; exclusion from
     the active set resets the store and clears the flag. *)
  mutable covering : bool;
  mutable changing : bool; (* an Epoch_change proposal is in flight *)
  (* Leader. *)
  rounds : (int, round) Hashtbl.t;
  pending : Wire.value Queue.t;
  my_keys : (int * int, unit) Hashtbl.t;
  inflight : (int * int, int) Hashtbl.t;
  mutable next_inst : int;
  outstanding : (int, Sim_time.t) Hashtbl.t;
  (* Active acceptor memory (covers everything chosen in this epoch and
     everything handed over from previous ones). *)
  acc_store : (int, Wire.value) Hashtbl.t;
  mutable n_reconfigs : int;
}

let send t dst msg = t.env.Node_env.send ~dst msg
let now t = t.env.Node_env.now ()
let pu t = match t.pu with Some p -> p | None -> assert false
let leader_of actives = match actives with l :: _ -> l | [] -> -1
let is_leader t = leader_of t.cur_actives = t.self
let is_active t = List.mem t.self t.cur_actives

let reply_if_mine t (ex : Replica_core.executed) =
  let key = Wire.value_key ex.v in
  if Hashtbl.mem t.my_keys key then begin
    Hashtbl.remove t.my_keys key;
    send t ex.v.Wire.client (Wire.Reply { req_id = ex.v.Wire.req_id; result = ex.result })
  end

let learn_value t ~inst v =
  Hashtbl.remove t.outstanding inst;
  Hashtbl.remove t.inflight (Wire.value_key v);
  let executed = Replica_core.learn t.core ~inst v in
  List.iter (reply_if_mine t) executed

(* Leader: a round is chosen once every current active accepted it. *)
let maybe_choose t ~inst round =
  if
    t.ready
    && List.for_all (fun a -> List.mem a round.acks) t.cur_actives
    && not (Replica_core.is_decided t.core ~inst)
  then begin
    Hashtbl.remove t.rounds inst;
    learn_value t ~inst round.v;
    Array.iter
      (fun dst ->
        if dst <> t.self then
          send t dst (Wire.Cp_learn { epoch = t.cur_epoch; inst; v = round.v }))
      t.cfg.replicas
  end

let start_round t ~inst v =
  let round = { v; acks = [ t.self ] } in
  Hashtbl.replace t.rounds inst round;
  Hashtbl.replace t.acc_store inst v;
  Hashtbl.replace t.outstanding inst (now t);
  List.iter
    (fun a ->
      if a <> t.self then send t a (Wire.Cp_accept { epoch = t.cur_epoch; inst; v }))
    t.cur_actives;
  maybe_choose t ~inst round

let propose_value t v =
  let key = Wire.value_key v in
  Hashtbl.replace t.my_keys key ();
  match Replica_core.cached_result t.core ~client:(fst key) ~req_id:(snd key) with
  | Some result ->
    Hashtbl.remove t.my_keys key;
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    if not t.ready then Queue.push v t.pending
    else if not (Hashtbl.mem t.inflight key) then begin
      let inst = t.next_inst in
      t.next_inst <- t.next_inst + 1;
      Hashtbl.replace t.inflight key inst;
      start_round t ~inst v
    end

let drain_pending t =
  if is_leader t && t.ready then
    while not (Queue.is_empty t.pending) do
      propose_value t (Queue.pop t.pending)
    done

(* ----- epoch machinery ---------------------------------------------------- *)

let bump_next_inst t =
  let high = Hashtbl.fold (fun inst _ acc -> max inst acc) t.acc_store (-1) in
  t.next_inst <- max t.next_inst (max (high + 1) (Replica_core.first_gap t.core))

(* The new epoch's leader may propose once its state basis covers every
   commit the previous epoch could complete. *)
let become_ready t =
  t.ready <- true;
  t.covering <- true;
  bump_next_inst t;
  Hashtbl.reset t.rounds;
  Hashtbl.reset t.outstanding;
  let undecided =
    Hashtbl.fold
      (fun inst v acc ->
        if Replica_core.is_decided t.core ~inst then acc else (inst, v) :: acc)
      t.acc_store []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (inst, v) ->
      Hashtbl.replace t.inflight (Wire.value_key v) inst;
      start_round t ~inst v)
    undecided;
  drain_pending t

(* Applying an Epoch_change closes the previous epoch on this node: old
   actives hand their acceptor memory to the new leader and stop
   acknowledging; any commit that raced the change needed their ack
   first, so the handoff covers it.

   Only a [covering] node may vouch, though.  An active of an epoch
   whose leader never became ready has no guarantee its store reaches
   back through history: accepting its (possibly empty) handoff would
   let the new leader re-propose fresh values at instances an earlier
   epoch already chose, and conflicting Cp_learns would split the
   replicas.  A new leader therefore becomes ready only from its own
   covering store or from a covering old active's handoff — and blocks
   (the documented Cheap Paxos cost) when every covering node is down. *)
let on_epoch_change t ~cseq actives =
  let was_active = is_active t && t.cur_actives <> [] in
  let bootstrap = t.cur_actives = [] in
  if not bootstrap then
    t.env.Node_env.note_phase
      ~phase:(Printf.sprintf "cheap-paxos:epoch-change:%d" cseq);
  t.cur_epoch <- cseq;
  t.cur_actives <- actives;
  t.n_reconfigs <- t.n_reconfigs + 1;
  t.ready <- false;
  t.changing <- false;
  Hashtbl.reset t.rounds;
  Hashtbl.reset t.outstanding;
  if bootstrap && List.mem t.self actives then t.covering <- true;
  let leader = leader_of actives in
  if leader = t.self then begin
    if bootstrap || t.covering then become_ready t
    (* else: wait for a Cp_state handoff from a covering old active. *)
  end
  else begin
    if was_active && t.covering then
      send t leader
        (Wire.Cp_state
           {
             epoch = cseq;
             accepted = Hashtbl.fold (fun i v acc -> (i, v) :: acc) t.acc_store [];
           });
    if not (List.mem t.self actives) then begin
      Hashtbl.reset t.acc_store;
      t.covering <- false
    end;
    (* Deposed leaders hand their queue over. *)
    while not (Queue.is_empty t.pending) do
      send t leader (Wire.Forward { v = Queue.pop t.pending })
    done
  end

(* Propose a new active set through the configuration consensus. Epoch
   succession is linearized by the log: losing the slot just means
   someone else's change applied first. *)
let propose_epoch t ~new_actives =
  if not (t.changing || Paxos_utility.proposing (pu t)) then begin
    t.changing <- true;
    Paxos_utility.propose (pu t) (Wire.Epoch_change { actives = new_actives })
      (fun ~ok ->
        t.changing <- false;
        (* Either way, on_entry applied whichever change won the slot. *)
        ignore ok)
  end

let takeover t =
  if (not (is_leader t)) && not t.changing then
    Paxos_utility.sync (pu t) (fun () ->
        if not (is_leader t) then propose_epoch t ~new_actives:[ t.self ])

let handle_value t v =
  match
    Replica_core.cached_result t.core ~client:v.Wire.client ~req_id:v.Wire.req_id
  with
  | Some result ->
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    Hashtbl.replace t.my_keys (Wire.value_key v) ();
    if is_leader t then propose_value t v
    else begin
      Queue.push v t.pending;
      (* A client only reaches a non-leader when it suspects the
         leader. *)
      takeover t
    end

(* ----- failure detector ----------------------------------------------------- *)

let scan t =
  if is_leader t && t.ready && not t.changing then begin
    let oldest = Hashtbl.fold (fun _ at acc -> min at acc) t.outstanding max_int in
    if oldest <> max_int && now t - oldest > t.cfg.acceptor_timeout then begin
      let laggards =
        Hashtbl.fold
          (fun _ round acc ->
            List.filter (fun a -> not (List.mem a round.acks)) t.cur_actives @ acc)
          t.rounds []
        |> List.sort_uniq compare
      in
      let new_actives =
        List.filter (fun a -> not (List.mem a laggards)) t.cur_actives
      in
      if new_actives <> t.cur_actives && new_actives <> [] then
        propose_epoch t ~new_actives
    end
  end

let rec fd_loop t =
  t.env.Node_env.after ~delay:t.cfg.check_period (fun () ->
      scan t;
      fd_loop t)

(* ----- message handling ------------------------------------------------------ *)

let handle t ~src msg =
  if not (Paxos_utility.handle (pu t) ~src msg) then
    match msg with
    | Wire.Request { req_id; cmd; relaxed_read = _ } ->
      handle_value t { Wire.client = src; req_id; cmd }
    | Wire.Forward { v } -> handle_value t v
    | Wire.Cp_accept { epoch; inst; v } ->
      (* The epoch check is the closure: once a newer Epoch_change has
         been applied here, older epochs get no further acks. *)
      if epoch = t.cur_epoch && is_active t then begin
        Hashtbl.replace t.acc_store inst v;
        send t src (Wire.Cp_accepted { epoch; inst; v })
      end
    | Wire.Cp_accepted { epoch; inst; v = _ } ->
      if epoch = t.cur_epoch then (
        match Hashtbl.find_opt t.rounds inst with
        | Some round ->
          if not (List.mem src round.acks) then round.acks <- src :: round.acks;
          maybe_choose t ~inst round
        | None -> ())
    | Wire.Cp_learn { epoch = _; inst; v } -> learn_value t ~inst v
    | Wire.Cp_state { epoch; accepted } ->
      if epoch = t.cur_epoch && is_leader t then begin
        List.iter (fun (inst, v) -> Hashtbl.replace t.acc_store inst v) accepted;
        if not t.ready then become_ready t
      end
    | Wire.Reply _ | Wire.Op_prepare_request _ | Wire.Op_prepare_response _
    | Wire.Op_abandon _ | Wire.Op_accept_request _ | Wire.Op_learn _
    | Wire.Ls_req _ | Wire.Ls_reply _ | Wire.Bp_prepare _ | Wire.Bp_promise _
    | Wire.Bp_reject _ | Wire.Bp_accept _ | Wire.Bp_learn _ | Wire.Mp_prepare _
    | Wire.Mp_promise _ | Wire.Mp_reject _ | Wire.Mp_accept _ | Wire.Mp_learn _ | Wire.Op_accept_batch _ | Wire.Op_learn_batch _ | Wire.Mp_accept_batch _ | Wire.Mp_learn_batch _
    | Wire.Mn_accept _ | Wire.Mn_learn _ | Wire.Tp_prepare _ | Wire.Tp_ack _
    | Wire.Tp_commit _ | Wire.Tp_commit_ack _ | Wire.Tp_rollback _ | Wire.Tp_nack _
    | Wire.Pu_prepare _ | Wire.Pu_promise _ | Wire.Pu_reject _ | Wire.Pu_accept _
    | Wire.Pu_accepted _ | Wire.Pu_nack _ | Wire.Pu_learn _ | Wire.Pu_read _
    | Wire.Pu_read_reply _ | Wire.Le_renew _ | Wire.Le_grant _ ->
      ()

let on_config_entry t ~cseq entry =
  match entry with
  | Wire.Epoch_change { actives } -> on_epoch_change t ~cseq actives
  | Wire.Leader_change _ | Wire.Acceptor_change _ ->
    (* 1Paxos entries never appear in a Cheap Paxos deployment. *)
    ()

let create ~env ~config =
  if config.initial_actives = [] then
    invalid_arg "Cheap_paxos.create: empty active set";
  List.iter
    (fun a ->
      if not (Array.exists (fun id -> id = a) config.replicas) then
        invalid_arg "Cheap_paxos.create: active not in replica set")
    config.initial_actives;
  let t =
    {
      env;
      cfg = config;
      self = env.Node_env.id;
      core = Replica_core.create ~replica:env.Node_env.id;
      pu = None;
      cur_epoch = 0;
      cur_actives = [];
      ready = false;
      covering = false;
      changing = false;
      rounds = Hashtbl.create 256;
      pending = Queue.create ();
      my_keys = Hashtbl.create 64;
      inflight = Hashtbl.create 256;
      next_inst = 0;
      outstanding = Hashtbl.create 64;
      acc_store = Hashtbl.create 1024;
      n_reconfigs = 0;
    }
  in
  let pu =
    Paxos_utility.create ~env ~peers:config.replicas
      ~timeout:config.reconfig_timeout
      ~seed:[ Wire.Epoch_change { actives = config.initial_actives } ]
      ~on_entry:(fun ~cseq entry -> on_config_entry t ~cseq entry)
  in
  t.pu <- Some pu;
  (* The seeded initial epoch is history, not a runtime change. *)
  t.n_reconfigs <- 0;
  t

let start t = fd_loop t
let replica_core t = t.core
let epoch t = t.cur_epoch
let actives t = t.cur_actives
let reconfigs t = t.n_reconfigs

(* Structural fingerprint for the explorer's visited-state table; same
   conventions as {!Onepaxos.digest}: hashtables in sorted key order,
   timestamps relative to the current clock. *)
let digest t =
  let tbl_list tbl =
    Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] |> List.sort compare
  in
  let clock = now t in
  let rounds =
    Hashtbl.fold
      (fun i r l -> (i, r.v, List.sort compare r.acks) :: l)
      t.rounds []
    |> List.sort compare
  in
  let outstanding =
    Hashtbl.fold (fun i at l -> (i, at - clock) :: l) t.outstanding []
    |> List.sort compare
  in
  Hashtbl.hash_param 1000 1000
    ( Replica_core.digest t.core, Paxos_utility.digest (pu t),
      (t.cur_epoch, List.sort compare t.cur_actives, t.ready, t.covering,
       t.changing),
      rounds,
      List.of_seq (Queue.to_seq t.pending),
      tbl_list t.my_keys, tbl_list t.inflight, t.next_inst, outstanding,
      tbl_list t.acc_store )

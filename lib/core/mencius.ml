module Node_env = Ci_engine.Node_env
module Command = Ci_rsm.Command

type config = { replicas : int array; skip_lag : int; relaxed_reads : bool }

let default_config ~replicas =
  if Array.length replicas < 1 then
    invalid_arg "Mencius.default_config: need at least one replica";
  { replicas; skip_lag = 0; relaxed_reads = false }

(* The deterministic placeholder a skipped slot decides: every replica
   derives the same value from the instance number alone. *)
let skip_value inst = { Wire.client = -1; req_id = inst; cmd = Command.Nop }

let is_skip_value (v : Wire.value) =
  v.Wire.client = -1 && Command.equal v.Wire.cmd Command.Nop

type tally = { v : Wire.value option; mutable srcs : int list }

type t = {
  env : Wire.t Node_env.t;
  cfg : config;
  self : int;
  index : int; (* my ownership class *)
  n : int;
  core : Replica_core.t;
  (* Owner side. *)
  mutable own_cursor : int; (* smallest owned instance not yet used or ceded *)
  mutable frontier : int; (* one past the highest instance seen proposed *)
  my_keys : (int * int, unit) Hashtbl.t;
  inflight : (int * int, int) Hashtbl.t;
  mutable n_skips : int;
  mutable n_used : int;
  (* Acceptor side. *)
  accepted : (int, Wire.value option) Hashtbl.t;
  (* Learner side. *)
  tallies : (int, tally) Hashtbl.t;
}

let majority t = (t.n / 2) + 1
let send t dst msg = t.env.Node_env.send ~dst msg
let broadcast t msg = Array.iter (fun dst -> send t dst msg) t.cfg.replicas

let reply_if_mine t (ex : Replica_core.executed) =
  let key = Wire.value_key ex.v in
  if Hashtbl.mem t.my_keys key then begin
    Hashtbl.remove t.my_keys key;
    send t ex.v.Wire.client (Wire.Reply { req_id = ex.v.Wire.req_id; result = ex.result })
  end

let decide t ~inst v_opt =
  let v = match v_opt with Some v -> v | None -> skip_value inst in
  Hashtbl.remove t.inflight (Wire.value_key v);
  let executed = Replica_core.learn t.core ~inst v in
  List.iter (reply_if_mine t) executed

(* Cede every unused owned slot sitting more than [skip_lag] behind the
   frontier, so the log can execute past us. *)
let rec maybe_skip t =
  if t.own_cursor + t.cfg.skip_lag < t.frontier then begin
    let inst = t.own_cursor in
    t.own_cursor <- t.own_cursor + t.n;
    t.n_skips <- t.n_skips + 1;
    broadcast t (Wire.Mn_accept { inst; v = None });
    maybe_skip t
  end

let observe_frontier t inst =
  if inst >= t.frontier then begin
    t.frontier <- inst + 1;
    maybe_skip t
  end

let propose_value t v =
  let key = Wire.value_key v in
  Hashtbl.replace t.my_keys key ();
  match Replica_core.cached_result t.core ~client:(fst key) ~req_id:(snd key) with
  | Some result ->
    Hashtbl.remove t.my_keys key;
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    if not (Hashtbl.mem t.inflight key) then begin
      let inst = t.own_cursor in
      t.own_cursor <- t.own_cursor + t.n;
      t.n_used <- t.n_used + 1;
      Hashtbl.replace t.inflight key inst;
      broadcast t (Wire.Mn_accept { inst; v = Some v });
      observe_frontier t inst
    end

let handle_request t ~src ~req_id ~cmd ~relaxed_read =
  if relaxed_read && t.cfg.relaxed_reads && Command.is_read cmd then
    match Replica_core.local_read t.core cmd with
    | Some result -> send t src (Wire.Reply { req_id; result })
    | None -> ()
  else propose_value t { Wire.client = src; req_id; cmd }

let on_accept t ~inst v_opt =
  observe_frontier t inst;
  (match Hashtbl.find_opt t.accepted inst with
   | Some _ -> () (* owners never re-propose differently; idempotent *)
   | None -> Hashtbl.add t.accepted inst v_opt);
  match Hashtbl.find_opt t.accepted inst with
  | Some v -> broadcast t (Wire.Mn_learn { inst; v })
  | None -> ()

let on_learn t ~src ~inst v_opt =
  observe_frontier t inst;
  if not (Replica_core.is_decided t.core ~inst) then begin
    let tl =
      match Hashtbl.find_opt t.tallies inst with
      | Some tl -> tl
      | None ->
        let tl = { v = v_opt; srcs = [] } in
        Hashtbl.add t.tallies inst tl;
        tl
    in
    if not (List.mem src tl.srcs) then begin
      tl.srcs <- src :: tl.srcs;
      if List.length tl.srcs >= majority t then begin
        Hashtbl.remove t.tallies inst;
        decide t ~inst tl.v
      end
    end
  end

let handle t ~src msg =
  match msg with
  | Wire.Request { req_id; cmd; relaxed_read } ->
    handle_request t ~src ~req_id ~cmd ~relaxed_read
  | Wire.Forward { v } -> propose_value t v
  | Wire.Mn_accept { inst; v } -> on_accept t ~inst v
  | Wire.Mn_learn { inst; v } -> on_learn t ~src ~inst v
  | Wire.Reply _ | Wire.Op_prepare_request _ | Wire.Op_prepare_response _
  | Wire.Op_abandon _ | Wire.Op_accept_request _ | Wire.Op_learn _
  | Wire.Pu_prepare _ | Wire.Pu_promise _ | Wire.Pu_reject _ | Wire.Pu_accept _
  | Wire.Pu_accepted _ | Wire.Pu_nack _ | Wire.Pu_learn _ | Wire.Pu_read _
  | Wire.Pu_read_reply _ | Wire.Ls_req _ | Wire.Ls_reply _ | Wire.Bp_prepare _
  | Wire.Bp_promise _ | Wire.Bp_reject _ | Wire.Bp_accept _ | Wire.Bp_learn _
  | Wire.Mp_prepare _ | Wire.Mp_promise _ | Wire.Mp_reject _ | Wire.Mp_accept _
  | Wire.Mp_learn _ | Wire.Op_accept_batch _ | Wire.Op_learn_batch _ | Wire.Mp_accept_batch _ | Wire.Mp_learn_batch _ | Wire.Cp_accept _ | Wire.Cp_accepted _ | Wire.Cp_learn _
  | Wire.Cp_state _ | Wire.Tp_prepare _ | Wire.Tp_ack _ | Wire.Tp_commit _
  | Wire.Tp_commit_ack _ | Wire.Tp_rollback _ | Wire.Tp_nack _ | Wire.Le_renew _
  | Wire.Le_grant _ ->
    ()

let create ~env ~config =
  let self = env.Node_env.id in
  let index =
    match Array.find_index (fun id -> id = self) config.replicas with
    | Some i -> i
    | None -> invalid_arg "Mencius.create: node not in the replica set"
  in
  {
    env;
    cfg = config;
    self;
    index;
    n = Array.length config.replicas;
    core = Replica_core.create ~replica:self;
    own_cursor = index;
    frontier = 0;
    my_keys = Hashtbl.create 64;
    inflight = Hashtbl.create 256;
    n_skips = 0;
    n_used = 0;
    accepted = Hashtbl.create 1024;
    tallies = Hashtbl.create 1024;
  }

let replica_core t = t.core
let skips_proposed t = t.n_skips
let owned_used t = t.n_used

(* Structural fingerprint for the explorer's visited-state table;
   hashtables in sorted key order (see {!Onepaxos.digest}). *)
let digest t =
  let tbl_list tbl =
    Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] |> List.sort compare
  in
  let tallies =
    Hashtbl.fold
      (fun i tl l -> (i, tl.v, List.sort compare tl.srcs) :: l)
      t.tallies []
    |> List.sort compare
  in
  Hashtbl.hash_param 1000 1000
    ( Replica_core.digest t.core, t.own_cursor, t.frontier,
      tbl_list t.my_keys, tbl_list t.inflight, tbl_list t.accepted, tallies )

(** Wire format: every message any protocol in this repository sends.

    All replicas, clients and protocols in a simulation share one
    machine and hence one message type; this module is the union of the
    protocol vocabularies. Constructor prefixes identify the protocol:
    [Op_] 1Paxos, [Pu_] PaxosUtility (the embedded configuration
    consensus of Section 5.2/5.3), [Mp_] Multi-/Basic-Paxos, [Tp_] 2PC,
    [Ls_] learner catch-up, and unprefixed constructors for the
    client–replica dialogue. *)

type value = { client : int; req_id : int; cmd : Ci_rsm.Command.t }
(** A value consensus decides on: a client command tagged with its
    origin, so any replica can route the reply and the state machine can
    deduplicate retries. *)

val value_equal : value -> value -> bool
(** Structural equality on values. *)

val value_key : value -> int * int
(** [value_key v] is the [(client, req_id)] identity of [v]. *)

val pp_value : Format.formatter -> value -> unit
(** Prints a value as [c<client>#<req>:<cmd>]. *)

type config_entry =
  | Leader_change of { leader : int; acceptor : int }
      (** Node [leader] announces itself as global leader, assuming
          [acceptor] as the active acceptor (Section 5.3). *)
  | Acceptor_change of { acceptor : int; carried : (int * value) list }
      (** The global leader replaces the active acceptor with
          [acceptor], carrying its uncommitted proposed values so the
          next adoption re-proposes them (Section 5.2). *)
  | Epoch_change of { actives : int list }
      (** Cheap Paxos: install a new active acceptor set (head =
          leader). The sequence slot this entry is chosen at is the
          epoch number, so epoch succession is linearized by the
          configuration consensus itself. *)

val config_entry_equal : config_entry -> config_entry -> bool
(** Structural equality on configuration entries. *)

val pp_config_entry : Format.formatter -> config_entry -> unit
(** Prints an entry. *)

type t =
  (* Client dialogue. *)
  | Request of { req_id : int; cmd : Ci_rsm.Command.t; relaxed_read : bool }
      (** A client command. [relaxed_read] permits a stale local answer
          for reads (the paper's relaxed consistency mode, §7.5). *)
  | Reply of { req_id : int; result : Ci_rsm.Command.result }
      (** The commit acknowledgement a client waits for. *)
  | Forward of { v : value }
      (** A replica hands a pending request to the (new) leader. *)
  (* 1Paxos data path (Appendix A). *)
  | Op_prepare_request of { pn : Pn.t; must_be_fresh : bool }
  | Op_prepare_response of { pn : Pn.t; accepted : (int * (Pn.t * value)) list }
  | Op_abandon of { hpn : Pn.t }
  | Op_accept_request of { inst : int; pn : Pn.t; v : value }
  | Op_learn of { inst : int; v : value }
  | Op_accept_batch of { base : int; pn : Pn.t; vs : value array }
      (** Batched accept request: one consensus round covering
          instances [base .. base + |vs| - 1] in one boundary-crossing
          message (the batching layer; never sent at [max_batch = 1]). *)
  | Op_learn_batch of { base : int; vs : value array }
      (** Batched decision notification for instances
          [base .. base + |vs| - 1]. *)
  (* PaxosUtility: Basic-Paxos over the configuration-entry sequence. *)
  | Pu_prepare of { cseq : int; pn : Pn.t }
  | Pu_promise of {
      cseq : int;
      pn : Pn.t;
      accepted : (Pn.t * config_entry) option;
      chosen_suffix : (int * config_entry) list;
    }
  | Pu_reject of { cseq : int; pn : Pn.t; chosen_suffix : (int * config_entry) list }
  | Pu_accept of { cseq : int; pn : Pn.t; entry : config_entry }
  | Pu_accepted of { cseq : int; pn : Pn.t }
  | Pu_nack of { cseq : int; pn : Pn.t }
  | Pu_learn of { cseq : int; entry : config_entry }
  | Pu_read of { token : int; from_ : int }
  | Pu_read_reply of { token : int; chosen_suffix : (int * config_entry) list }
  (* Learner catch-up used by a fresh 1Paxos leader. *)
  | Ls_req of { token : int; from_ : int }
  | Ls_reply of { token : int; decisions : (int * value) list }
  (* Single-decree Basic-Paxos (Synod), used as correctness reference. *)
  | Bp_prepare of { inst : int; pn : Pn.t }
  | Bp_promise of { inst : int; pn : Pn.t; accepted : (Pn.t * value) option }
  | Bp_reject of { inst : int; pn : Pn.t }
  | Bp_accept of { inst : int; pn : Pn.t; v : value }
  | Bp_learn of { inst : int; pn : Pn.t; v : value }
  (* Multi-Paxos data path. *)
  | Mp_prepare of { pn : Pn.t; low : int }
  | Mp_promise of { pn : Pn.t; accepted : (int * (Pn.t * value)) list }
  | Mp_reject of { pn : Pn.t }
  | Mp_accept of { inst : int; pn : Pn.t; v : value }
  | Mp_learn of { inst : int; pn : Pn.t; v : value }
  | Mp_accept_batch of { base : int; pn : Pn.t; vs : value array }
      (** Batched accepts for instances [base .. base + |vs| - 1] under
          one proposal number (the batching layer; never sent at
          [max_batch = 1]). *)
  | Mp_learn_batch of { base : int; pn : Pn.t; vs : value array }
      (** Batched acceptor acknowledgement mirroring
          {!Mp_accept_batch}. *)
  (* Mencius: multi-leader, round-robin instance ownership (§8). A
     [None] value is a skip — the owner ceding its slot so the log can
     advance past it. *)
  | Mn_accept of { inst : int; v : value option }
  | Mn_learn of { inst : int; v : value option }
  (* Cheap Paxos (§8): leader + reduced active acceptor set; auxiliaries
     join via a state handoff from a surviving active acceptor. *)
  | Cp_accept of { epoch : int; inst : int; v : value }
  | Cp_accepted of { epoch : int; inst : int; v : value }
  | Cp_learn of { epoch : int; inst : int; v : value }
  | Cp_state of { epoch : int; accepted : (int * value) list }
      (** Closure handoff: an active of the epoch being superseded sends
          its acceptor memory to the new epoch's leader {e when it
          applies} the [Epoch_change] — after which it acknowledges no
          further old-epoch accepts. Any commit racing the change needed
          this acceptor's earlier ack, so the handoff provably covers
          it. *)
  (* 2PC (Barrelfish-style agreement). *)
  | Tp_prepare of { inst : int; v : value }
  | Tp_ack of { inst : int }
  | Tp_commit of { inst : int; v : value }
  | Tp_commit_ack of { inst : int }
  | Tp_rollback of { inst : int }
  | Tp_nack of { inst : int }
      (** Participant refusal: the shard could not acquire the 2PC lock
          ([Prep] returned [Swapped false]); the coordinator aborts. *)
  (* Leader leases: grant/renew piggybacked on the protocols' existing
     periodic traffic so a leader can serve linearizable reads locally
     while its lease is provably unexpired. Timestamps never cross
     clocks: the leader stamps [sent] with its own clock and the grant
     echoes it back, so the leader reasons about expiry entirely in its
     own time base, and the grantee starts its own lease window from
     its own receipt time. *)
  | Le_renew of { pn : Pn.t; sent : int }
      (** Leader -> replicas: extend the lease for leadership [pn].
          [sent] is the leader's clock at transmission. *)
  | Le_grant of { pn : Pn.t; sent : int }
      (** Replica -> leader: granted. The grantee promises not to help
          elect a different leader for [lease] (its own clock) after
          receipt; the leader counts the lease as held only until
          [sent + lease - skew] (its own clock), so the follower's
          promise always outlives the leader's belief by at least the
          assumed clock-skew bound. *)

val pp : Format.formatter -> t -> unit
(** Prints a compact rendering of any message (for traces and test
    failures). *)

val kind : t -> string
(** [kind m] is the constructor name, for counting message types. *)

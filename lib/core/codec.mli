(** Binary wire codec: every {!Wire.t} as flat bytes in caller-owned
    buffers.

    The paper's QC-libtask moves messages through fixed 128-byte slots;
    this codec is the byte layout that lets the live runtime do the
    same. Encoding writes a 1-byte constructor tag followed by the
    fields in declaration order — integers as 8 little-endian bytes
    (OCaml's 63 tagged bits survive the round trip, including negative
    values such as {!Pn.bottom}), booleans and option/outcome
    discriminants as 1 byte, and lists/arrays as a 4-byte element count
    followed by the elements. There is no alignment padding and no
    self-describing framing: the caller owns message boundaries (the
    transports length-prefix each message).

    The encode path allocates {e nothing} — no closures, no boxing, no
    intermediate buffers — for every constructor in the vocabulary, so
    a transport can encode straight into a shared ring slot on its hot
    path. Decoding allocates exactly the returned message; every read
    is bounds-checked against [len] and malformed input (truncated
    buffer, unknown tag, absurd element count, trailing bytes) raises
    {!Error}, never a crash or an unbounded allocation. *)

exception Error of string
(** Malformed input: truncated buffer, unknown constructor or
    discriminant, element count that cannot fit the remaining bytes,
    or trailing bytes after a complete message. Also raised by
    {!encode} when the buffer cannot hold the message. *)

val encoded_size : Wire.t -> int
(** [encoded_size m] is exactly how many bytes {!encode} will write for
    [m]. Pure and allocation-free; transports use it to reserve ring
    slots before encoding in place. *)

val encode : Wire.t -> Bytes.t -> pos:int -> int
(** [encode m buf ~pos] writes [m] into [buf] starting at [pos] and
    returns the number of bytes written (= [encoded_size m]).
    Allocation-free for every constructor.
    @raise Error if [buf] is too small ([pos + encoded_size m >
    Bytes.length buf]). *)

val decode : Bytes.t -> pos:int -> len:int -> Wire.t
(** [decode buf ~pos ~len] reads the message occupying exactly
    [buf[pos .. pos+len-1]].
    @raise Error on truncation, garbage, or trailing bytes. *)

val max_fixed_size : int
(** An upper bound on [encoded_size] over every constructor that
    carries no list or array payload — the messages the paper's fixed
    slots were sized for. A transport slot of at least [max_fixed_size]
    plus its header never needs continuation slots on the non-batch
    data path. *)

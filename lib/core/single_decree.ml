module Node_env = Ci_engine.Node_env
module Rng = Ci_engine.Rng

type attempt = {
  pn : Pn.t;
  mutable phase : [ `Prepare | `Accept ];
  mutable pushing : Wire.value;
  mutable promises : int;
  mutable best : (Pn.t * Wire.value) option;
  mutable acks : int;
  id : int;
}

type t = {
  env : Wire.t Node_env.t;
  self : int;
  peers : int array;
  majority : int;
  timeout : int;
  rng : Rng.t;
  on_decide : Wire.value -> unit;
  (* Acceptor. *)
  mutable promised : Pn.t;
  mutable accepted : (Pn.t * Wire.value) option;
  (* Learner: acceptors that reported acceptance, per proposal number. *)
  tallies : (Pn.t, (Wire.value * int list ref)) Hashtbl.t;
  mutable decided : Wire.value option;
  (* Proposer. *)
  mutable round : int;
  mutable want : Wire.value option;
  mutable att : attempt option;
  mutable next_att : int;
}

let send t dst msg = t.env.Node_env.send ~dst msg
let broadcast t msg = Array.iter (fun dst -> send t dst msg) t.peers

let decide t v =
  if t.decided = None then begin
    t.decided <- Some v;
    t.att <- None;
    t.on_decide v
  end

let rec start_attempt t v =
  if t.decided = None then begin
    t.round <- t.round + 1;
    let pn = Pn.make ~round:t.round ~owner:t.self in
    let a =
      {
        pn;
        phase = `Prepare;
        pushing = v;
        promises = 0;
        best = None;
        acks = 0;
        id = t.next_att;
      }
    in
    t.next_att <- t.next_att + 1;
    t.att <- Some a;
    broadcast t (Wire.Bp_prepare { inst = 0; pn });
    let delay = t.timeout + Rng.int t.rng (t.timeout / 2 + 1) in
    t.env.Node_env.after ~delay (fun () ->
        match t.att with
        | Some cur when cur.id = a.id && t.decided = None ->
          t.att <- None;
          start_attempt t v
        | Some _ | None -> ())
  end

let propose t v =
  if t.want = None then t.want <- Some v;
  if t.att = None && t.decided = None then
    match t.want with Some w -> start_attempt t w | None -> ()

let handle t ~src msg =
  match msg with
  | Wire.Bp_prepare { inst = _; pn } ->
    if Pn.(pn > t.promised) then begin
      t.promised <- pn;
      send t src (Wire.Bp_promise { inst = 0; pn; accepted = t.accepted })
    end
    else send t src (Wire.Bp_reject { inst = 0; pn = t.promised })
  | Wire.Bp_promise { inst = _; pn; accepted } ->
    (match t.att with
     | Some a when Pn.equal a.pn pn && a.phase = `Prepare ->
       a.promises <- a.promises + 1;
       (match accepted with
        | Some (apn, av) ->
          (match a.best with
           | Some (bpn, _) when Pn.(bpn >= apn) -> ()
           | Some _ | None -> a.best <- Some (apn, av))
        | None -> ());
       if a.promises >= t.majority then begin
         a.phase <- `Accept;
         (match a.best with Some (_, bv) -> a.pushing <- bv | None -> ());
         broadcast t (Wire.Bp_accept { inst = 0; pn; v = a.pushing })
       end
     | Some _ | None -> ())
  | Wire.Bp_reject { inst = _; pn } -> t.round <- max t.round pn.Pn.round
  | Wire.Bp_accept { inst = _; pn; v } ->
    if Pn.(pn >= t.promised) then begin
      t.promised <- pn;
      t.accepted <- Some (pn, v);
      broadcast t (Wire.Bp_learn { inst = 0; pn; v })
    end
    else send t src (Wire.Bp_reject { inst = 0; pn = t.promised })
  | Wire.Bp_learn { inst = _; pn; v } ->
    (match t.decided with
     | Some _ -> ()
     | None ->
       let _, srcs =
         match Hashtbl.find_opt t.tallies pn with
         | Some entry -> entry
         | None ->
           let entry = (v, ref []) in
           Hashtbl.add t.tallies pn entry;
           entry
       in
       if not (List.mem src !srcs) then begin
         srcs := src :: !srcs;
         if List.length !srcs >= t.majority then decide t v
       end)
  | _ -> ()

let decision t = t.decided

let create ~env ~peers ~timeout ?(on_decide = fun _ -> ()) () =
  {
    env;
    self = env.Node_env.id;
    peers;
    majority = (Array.length peers / 2) + 1;
    timeout;
    rng = Rng.split env.Node_env.rng;
    on_decide;
    promised = Pn.bottom;
    accepted = None;
    tallies = Hashtbl.create 8;
    decided = None;
    round = 0;
    want = None;
    att = None;
    next_att = 0;
  }

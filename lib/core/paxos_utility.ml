module Node_env = Ci_engine.Node_env
module Op_log = Ci_rsm.Op_log
module Rng = Ci_engine.Rng

type acc_slot = {
  mutable promised : Pn.t;
  mutable accepted : (Pn.t * Wire.config_entry) option;
}

type attempt = {
  att_id : int;
  cseq : int;
  pn : Pn.t;
  mine : Wire.config_entry;
  pushing : Wire.config_entry; (* phase-2 entry: [mine] or an adopted one *)
  mutable phase : [ `Prepare | `Accept ];
  mutable promise_count : int;
  mutable best : (Pn.t * Wire.config_entry) option;
  mutable ack_count : int;
  mutable highest_seen : Pn.t; (* from rejects/nacks, to jump rounds *)
  k : ok:bool -> unit;
}

type read_op = { mutable reply_count : int; k : unit -> unit }

type t = {
  env : Wire.t Node_env.t;
  self : int;
  peers : int array;
  majority : int;
  timeout : Ci_engine.Sim_time.t;
  rng : Rng.t;
  on_entry : cseq:int -> Wire.config_entry -> unit;
  log : Wire.config_entry Op_log.t;
  acc : (int, acc_slot) Hashtbl.t;
  mutable applied : int; (* first slot on_entry has not fired for *)
  mutable round : int; (* proposal round counter *)
  mutable att : attempt option;
  mutable next_att_id : int;
  mutable retry_streak : int; (* consecutive timed-out attempts, for backoff *)
  reads : (int, read_op) Hashtbl.t;
  mutable next_token : int;
  mutable lead : int option;
  mutable acct : int option;
}

let send t dst msg = t.env.Node_env.send ~dst msg
let broadcast t msg = Array.iter (fun dst -> send t dst msg) t.peers

(* Fire [on_entry] for every newly contiguous chosen entry. *)
let apply_ready t =
  let next =
    Op_log.iter_prefix t.log ~from_:t.applied (fun cseq entry ->
        (match entry with
         | Wire.Leader_change { leader; acceptor } ->
           t.lead <- Some leader;
           t.acct <- Some acceptor
         | Wire.Acceptor_change { acceptor; _ } -> t.acct <- Some acceptor
         | Wire.Epoch_change { actives } ->
           t.lead <- (match actives with l :: _ -> Some l | [] -> t.lead));
        t.on_entry ~cseq entry)
  in
  t.applied <- next

(* Resolve the in-flight attempt, if any, against a slot now known to be
   decided. *)
let resolve_attempts t =
  match t.att with
  | None -> ()
  | Some a ->
    (match Op_log.get t.log ~inst:a.cseq with
     | None -> ()
     | Some chosen ->
       t.att <- None;
       t.retry_streak <- 0;
       a.k ~ok:(Wire.config_entry_equal chosen a.mine))

let record_chosen t ~cseq entry =
  (match Op_log.decide t.log ~inst:cseq entry with
   | `New -> apply_ready t
   | `Duplicate -> ()
   | `Conflict _ ->
     (* A safety violation in PaxosUtility itself; surfaced by tests via
        the log's conflict list. *)
     ());
  resolve_attempts t

let absorb_suffix t suffix =
  List.iter (fun (cseq, entry) -> record_chosen t ~cseq entry) suffix

let fresh_pn t =
  t.round <- t.round + 1;
  Pn.make ~round:t.round ~owner:t.self

(* Exponential backoff with jitter: duelling proposers desynchronize,
   and slow networks stop retrying before answers can possibly arrive. *)
let backoff t =
  let scale = min 32 (1 lsl min 5 t.retry_streak) in
  let base = t.timeout * scale in
  base + Rng.int t.rng (max 1 (base / 2))

(* --- proposer ---------------------------------------------------------- *)

let rec start_attempt t mine k =
  let cseq = Op_log.first_gap t.log in
  let pn = fresh_pn t in
  let a =
    {
      att_id = t.next_att_id;
      cseq;
      pn;
      mine;
      pushing = mine;
      phase = `Prepare;
      promise_count = 0;
      best = None;
      ack_count = 0;
      highest_seen = Pn.bottom;
      k;
    }
  in
  t.next_att_id <- t.next_att_id + 1;
  t.att <- Some a;
  arm_retry t a;
  broadcast t (Wire.Pu_prepare { cseq; pn })

(* Retry with a higher proposal number unless the attempt completed or
   was superseded. *)
and arm_retry t a =
  t.env.Node_env.after ~delay:(backoff t) (fun () ->
      match t.att with
      | Some cur when cur.att_id = a.att_id ->
        t.att <- None;
        t.retry_streak <- t.retry_streak + 1;
        if Pn.(a.highest_seen > a.pn) then t.round <- max t.round a.highest_seen.Pn.round;
        start_attempt t a.mine a.k
      | Some _ | None -> ())

let enter_accept_phase t a =
  let pushing =
    match a.best with Some (_, entry) -> entry | None -> a.mine
  in
  let a' = { a with phase = `Accept; pushing } in
  t.att <- Some a';
  broadcast t (Wire.Pu_accept { cseq = a'.cseq; pn = a'.pn; entry = pushing })

let propose t entry k =
  if t.att <> None then
    invalid_arg "Paxos_utility.propose: a proposal is already in flight";
  start_attempt t entry k

let proposing t = t.att <> None

(* --- reads (majority sync) -------------------------------------------- *)

let sync t k =
  let token = t.next_token in
  t.next_token <- t.next_token + 1;
  Hashtbl.replace t.reads token { reply_count = 0; k };
  let from_ = Op_log.first_gap t.log in
  broadcast t (Wire.Pu_read { token; from_ })

(* --- message handling -------------------------------------------------- *)

let acc_slot t cseq =
  match Hashtbl.find_opt t.acc cseq with
  | Some s -> s
  | None ->
    let s = { promised = Pn.bottom; accepted = None } in
    Hashtbl.add t.acc cseq s;
    s

let suffix_from t from_ =
  List.filter (fun (i, _) -> i >= from_) (Op_log.to_list t.log)

let with_attempt t ~cseq ~pn f =
  match t.att with
  | Some a when a.cseq = cseq && Pn.equal a.pn pn -> f a
  | Some _ | None -> ()

let handle t ~src msg =
  match msg with
  | Wire.Pu_prepare { cseq; pn } ->
    (if Op_log.is_decided t.log ~inst:cseq then
       send t src (Wire.Pu_reject { cseq; pn; chosen_suffix = suffix_from t cseq })
     else
       let s = acc_slot t cseq in
       if Pn.(pn > s.promised) then begin
         s.promised <- pn;
         send t src
           (Wire.Pu_promise
              { cseq; pn; accepted = s.accepted; chosen_suffix = suffix_from t cseq })
       end
       else
         send t src
           (Wire.Pu_reject
              { cseq; pn = s.promised; chosen_suffix = suffix_from t cseq }));
    true
  | Wire.Pu_promise { cseq; pn; accepted; chosen_suffix } ->
    absorb_suffix t chosen_suffix;
    with_attempt t ~cseq ~pn (fun a ->
        if a.phase = `Prepare then begin
          a.promise_count <- a.promise_count + 1;
          (match accepted with
           | Some (apn, entry) ->
             (match a.best with
              | Some (bpn, _) when Pn.(bpn >= apn) -> ()
              | Some _ | None -> a.best <- Some (apn, entry))
           | None -> ());
          if a.promise_count >= t.majority then enter_accept_phase t a
        end);
    true
  | Wire.Pu_reject { cseq; pn; chosen_suffix } ->
    absorb_suffix t chosen_suffix;
    (* [resolve_attempts] inside [absorb_suffix] handles a decided slot;
       otherwise remember the higher number for the next round. *)
    (match t.att with
     | Some a when a.cseq = cseq -> a.highest_seen <- Pn.max a.highest_seen pn
     | Some _ | None -> ());
    true
  | Wire.Pu_accept { cseq; pn; entry } ->
    (if Op_log.is_decided t.log ~inst:cseq then
       (* Already decided: re-broadcasting the learn covers lost-learn
          retries without re-running the protocol. *)
       match Op_log.get t.log ~inst:cseq with
       | Some chosen -> send t src (Wire.Pu_learn { cseq; entry = chosen })
       | None -> ()
     else
       let s = acc_slot t cseq in
       if Pn.(pn >= s.promised) then begin
         s.promised <- pn;
         s.accepted <- Some (pn, entry);
         send t src (Wire.Pu_accepted { cseq; pn })
       end
       else send t src (Wire.Pu_nack { cseq; pn = s.promised }));
    true
  | Wire.Pu_accepted { cseq; pn } ->
    with_attempt t ~cseq ~pn (fun a ->
        if a.phase = `Accept then begin
          a.ack_count <- a.ack_count + 1;
          if a.ack_count >= t.majority then begin
            broadcast t (Wire.Pu_learn { cseq; entry = a.pushing });
            record_chosen t ~cseq a.pushing
          end
        end);
    true
  | Wire.Pu_nack { cseq; pn } ->
    (match t.att with
     | Some a when a.cseq = cseq -> a.highest_seen <- Pn.max a.highest_seen pn
     | Some _ | None -> ());
    true
  | Wire.Pu_learn { cseq; entry } ->
    record_chosen t ~cseq entry;
    true
  | Wire.Pu_read { token; from_ } ->
    send t src (Wire.Pu_read_reply { token; chosen_suffix = suffix_from t from_ });
    true
  | Wire.Pu_read_reply { token; chosen_suffix } ->
    absorb_suffix t chosen_suffix;
    (match Hashtbl.find_opt t.reads token with
     | Some op ->
       op.reply_count <- op.reply_count + 1;
       if op.reply_count >= t.majority then begin
         Hashtbl.remove t.reads token;
         op.k ()
       end
     | None -> ());
    true
  | Wire.Request _ | Wire.Reply _ | Wire.Forward _ | Wire.Op_prepare_request _
  | Wire.Op_prepare_response _ | Wire.Op_abandon _ | Wire.Op_accept_request _
  | Wire.Op_learn _ | Wire.Ls_req _ | Wire.Ls_reply _ | Wire.Mp_prepare _
  | Wire.Mp_promise _ | Wire.Mp_reject _ | Wire.Mp_accept _ | Wire.Mp_learn _ | Wire.Op_accept_batch _ | Wire.Op_learn_batch _ | Wire.Mp_accept_batch _ | Wire.Mp_learn_batch _
  | Wire.Tp_prepare _ | Wire.Tp_ack _ | Wire.Tp_commit _ | Wire.Tp_commit_ack _
  | Wire.Tp_rollback _ | Wire.Tp_nack _ | Wire.Bp_prepare _ | Wire.Bp_promise _ | Wire.Bp_reject _ | Wire.Bp_accept _ | Wire.Bp_learn _ | Wire.Mn_accept _ | Wire.Mn_learn _ | Wire.Cp_accept _ | Wire.Cp_accepted _ | Wire.Cp_learn _ | Wire.Cp_state _ | Wire.Le_renew _ | Wire.Le_grant _ ->
    false

let names_other_leader ~leader = function
  | Wire.Leader_change { leader = l; _ } -> l <> leader
  | Wire.Acceptor_change _ -> false
  | Wire.Epoch_change { actives } ->
    (match actives with l :: _ -> l <> leader | [] -> false)

let helped_elect_other t ~from_cseq ~leader =
  Hashtbl.fold
    (fun cseq s acc ->
      acc
      || cseq >= from_cseq
         &&
         match s.accepted with
         | Some (_, e) -> names_other_leader ~leader e
         | None -> false)
    t.acc false
  || List.exists
       (fun (cseq, e) -> cseq >= from_cseq && names_other_leader ~leader e)
       (Op_log.to_list t.log)

let entries t = Op_log.to_list t.log
let next_cseq t = Op_log.first_gap t.log

(* Structural fingerprint for the explorer (see {!Replica_core.digest}).
   Hashtables fold to sorted lists so iteration order cannot leak in;
   the in-flight attempt contributes its pure-data fields only. *)
let digest t =
  let acc =
    Hashtbl.fold (fun c s l -> (c, s.promised, s.accepted) :: l) t.acc []
    |> List.sort compare
  in
  let att =
    match t.att with
    | None -> None
    | Some a ->
      Some
        ( a.cseq,
          a.pn,
          a.mine,
          a.pushing,
          (a.phase, a.promise_count, a.best, a.ack_count, a.highest_seen) )
  in
  Hashtbl.hash_param 1000 1000
    ( Op_log.to_list t.log,
      acc,
      att,
      (t.applied, t.round, t.retry_streak, Hashtbl.length t.reads),
      (t.lead, t.acct) )
let applied_upto t = t.applied
let current_leader t = t.lead
let current_acceptor t = t.acct

let create ~env ~peers ~timeout ~seed ~on_entry =
  let t =
    {
      env;
      self = env.Node_env.id;
      peers;
      majority = (Array.length peers / 2) + 1;
      timeout;
      rng = Rng.split env.Node_env.rng;
      on_entry;
      log = Op_log.create ~equal:Wire.config_entry_equal ();
      acc = Hashtbl.create 16;
      applied = 0;
      round = 0;
      att = None;
      next_att_id = 0;
      retry_streak = 0;
      reads = Hashtbl.create 8;
      next_token = 0;
      lead = None;
      acct = None;
    }
  in
  List.iteri
    (fun i entry -> ignore (Op_log.decide t.log ~inst:i entry))
    seed;
  apply_ready t;
  t

(* ----- crash-recovery ---------------------------------------------------- *)

(* The durable registers of a Paxos acceptor/learner: what a real
   implementation fsyncs before answering. Everything else (in-flight
   attempt, retry streak, pending reads) is volatile and is legitimately
   lost in a crash — the protocol re-derives it. *)
type stable = {
  st_entries : (int * Wire.config_entry) list;
  st_acc : (int * Pn.t * (Pn.t * Wire.config_entry) option) list;
  st_round : int;
}

let stable t =
  {
    st_entries = Op_log.to_list t.log;
    st_acc =
      Hashtbl.fold
        (fun cseq s acc -> (cseq, s.promised, s.accepted) :: acc)
        t.acc [];
    st_round = t.round;
  }

let recover ~env ~peers ~timeout ~stable:st ~on_entry =
  let t = create ~env ~peers ~timeout ~seed:[] ~on_entry in
  List.iter
    (fun (cseq, entry) -> ignore (Op_log.decide t.log ~inst:cseq entry))
    st.st_entries;
  apply_ready t;
  List.iter
    (fun (cseq, promised, accepted) ->
      Hashtbl.replace t.acc cseq { promised; accepted })
    st.st_acc;
  (* The round counter must never regress: reusing a proposal number
     with a different entry would let two values share one (cseq, pn). *)
  t.round <- st.st_round;
  t

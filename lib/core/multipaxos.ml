module Node_env = Ci_engine.Node_env
module Sim_time = Ci_engine.Sim_time
module Rng = Ci_engine.Rng
module Command = Ci_rsm.Command

type config = {
  replicas : int array;
  initial_leader : int;
  election_timeout : Sim_time.t;
  relaxed_reads : bool;
  max_batch : int;
  batch_delay : Sim_time.t;
  window : int;
  lease : Sim_time.t;
  lease_skew : Sim_time.t;
}

let default_config ~replicas =
  if Array.length replicas < 1 then
    invalid_arg "Multipaxos.default_config: need at least one replica";
  {
    replicas;
    initial_leader = replicas.(0);
    election_timeout = Sim_time.us 400;
    relaxed_reads = false;
    max_batch = 1;
    batch_delay = 0;
    window = 0;
    lease = 0;
    lease_skew = 0;
  }

(* Learn tally for one (instance, proposal number): which acceptors
   reported acceptance. *)
type tally = { v : Wire.value; mutable srcs : int list }

type t = {
  env : Wire.t Node_env.t;
  cfg : config;
  self : int;
  core : Replica_core.t;
  rng : Rng.t;
  (* Proposer. *)
  mutable iam_leader : bool;
  mutable my_pn : Pn.t;
  mutable pn_round : int;
  mutable electing : Pn.t option; (* pn of the election in flight *)
  mutable election_no : int;
  mutable election_timer : Node_env.timer option;
  mutable promise_count : int;
  promise_best : (int, Pn.t * Wire.value) Hashtbl.t;
  proposed : (int, Wire.value) Hashtbl.t;
  inflight : (int * int, int) Hashtbl.t;
  pending : Wire.value Queue.t;
  mutable next_inst : int;
  my_keys : (int * int, unit) Hashtbl.t;
  (* Batching / pipelining layer (inactive at max_batch = 1, window = 0;
     see Onepaxos for the shared design). *)
  bat_buf : Wire.value Queue.t;
  bat_keys : (int * int, unit) Hashtbl.t;
  mutable bat_inflight : int;
  bat_remaining : (int, int ref) Hashtbl.t;
  slot_batch : (int, int) Hashtbl.t;
  mutable bat_timer : Node_env.timer option;
  mutable bat_overdue : bool;
  (* Acceptor. *)
  mutable promised : Pn.t;
  accepted : (int, Pn.t * Wire.value) Hashtbl.t;
  (* Learner. *)
  tallies : (int * Pn.t, tally) Hashtbl.t;
  mutable n_elections : int;
  mutable election_streak : int; (* consecutive failed elections, for backoff *)
  (* Leader lease (all volatile — a crash forfeits the lease, and the
     recovering replica sits out a full lease window; see [recover]). *)
  mutable grant_holder : Pn.t;
      (* who we last granted to; [Pn.bottom] = a post-recovery blanket
         refusal (its owner -1 matches no proposer) *)
  mutable grant_until : Sim_time.t; (* our clock; promise not to elect others *)
  grants : (int, Sim_time.t) Hashtbl.t;
      (* leader side: grantor -> expiry ON OUR CLOCK, i.e. the echoed
         [sent] + lease - skew. No remote clock is ever read. *)
  mutable n_lease_reads : int;
  mutable read_floor : int;
      (* Highest instance whose write may have been acked by someone
         other than this leader in this term (adopted from a previous
         term, or forwarded by another replica that replies to its own
         client on local execution). Local reads wait for the executed
         prefix to pass it; the leader's own un-acked in-flight writes
         need no such wait — a concurrent read may linearize before
         them. *)
  mutable bat_has_fwd : bool; (* a forwarded value sits in [bat_buf] *)
}

let majority t = (Array.length t.cfg.replicas / 2) + 1
let send t dst msg = t.env.Node_env.send ~dst msg
let broadcast t msg = Array.iter (fun dst -> send t dst msg) t.cfg.replicas
let now t = t.env.Node_env.now ()

let fresh_pn t =
  t.pn_round <- t.pn_round + 1;
  Pn.make ~round:t.pn_round ~owner:t.self

let reply_if_mine t (ex : Replica_core.executed) =
  let key = Wire.value_key ex.v in
  if Hashtbl.mem t.my_keys key then begin
    Hashtbl.remove t.my_keys key;
    send t ex.v.Wire.client (Wire.Reply { req_id = ex.v.Wire.req_id; result = ex.result })
  end

let batching_on t = t.cfg.max_batch > 1 || t.cfg.window > 0
let window_open t = t.cfg.window <= 0 || t.bat_inflight < t.cfg.window

let cancel_batch_timer t =
  match t.bat_timer with
  | Some tm ->
    Node_env.cancel_timer tm;
    t.bat_timer <- None
  | None -> ()

let rec learn_value t ~inst v =
  Hashtbl.remove t.inflight (Wire.value_key v);
  let executed = Replica_core.learn t.core ~inst v in
  List.iter (reply_if_mine t) executed;
  batch_decided t ~inst

and batch_decided t ~inst =
  match Hashtbl.find_opt t.slot_batch inst with
  | None -> ()
  | Some base ->
    Hashtbl.remove t.slot_batch inst;
    (match Hashtbl.find_opt t.bat_remaining base with
     | Some r ->
       decr r;
       if !r <= 0 then begin
         Hashtbl.remove t.bat_remaining base;
         t.bat_inflight <- max 0 (t.bat_inflight - 1);
         try_flush t
       end
     | None -> ())

and try_flush t =
  if t.iam_leader then begin
    while window_open t && Queue.length t.bat_buf >= t.cfg.max_batch do
      flush_batch t t.cfg.max_batch
    done;
    if Queue.is_empty t.bat_buf then begin
      t.bat_overdue <- false;
      cancel_batch_timer t
    end
    else if window_open t then begin
      if t.bat_overdue || t.cfg.batch_delay <= 0 then begin
        t.bat_overdue <- false;
        cancel_batch_timer t;
        flush_batch t (Queue.length t.bat_buf)
      end
      else if t.bat_timer = None then
        t.bat_timer <-
          Some
            (t.env.Node_env.after_cancel ~delay:t.cfg.batch_delay (fun () ->
                 t.bat_timer <- None;
                 t.bat_overdue <- true;
                 try_flush t))
    end
  end

and flush_batch t k =
  let base = t.next_inst in
  t.next_inst <- base + k;
  let vs = Array.make k (Queue.peek t.bat_buf) in
  for i = 0 to k - 1 do
    vs.(i) <- Queue.pop t.bat_buf
  done;
  Array.iteri
    (fun i v ->
      let inst = base + i in
      Hashtbl.remove t.bat_keys (Wire.value_key v);
      Hashtbl.replace t.proposed inst v;
      Hashtbl.replace t.inflight (Wire.value_key v) inst;
      Hashtbl.replace t.slot_batch inst base)
    vs;
  Hashtbl.replace t.bat_remaining base (ref k);
  t.bat_inflight <- t.bat_inflight + 1;
  if t.bat_has_fwd then begin
    (* A forwarded value may be in this batch: its forwarder can ack it
       as soon as it decides, so local reads wait for the whole range. *)
    t.read_floor <- max t.read_floor (base + k - 1);
    if Queue.is_empty t.bat_buf then t.bat_has_fwd <- false
  end;
  broadcast t (Wire.Mp_accept_batch { base; pn = t.my_pn; vs })

and propose_value t v =
  let key = Wire.value_key v in
  Hashtbl.replace t.my_keys key ();
  match Replica_core.cached_result t.core ~client:(fst key) ~req_id:(snd key) with
  | Some result ->
    Hashtbl.remove t.my_keys key;
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    if batching_on t then begin
      if not (Hashtbl.mem t.inflight key || Hashtbl.mem t.bat_keys key)
      then begin
        Hashtbl.replace t.bat_keys key ();
        Queue.push v t.bat_buf;
        try_flush t
      end
    end
    else if not (Hashtbl.mem t.inflight key) then begin
      let inst = t.next_inst in
      t.next_inst <- t.next_inst + 1;
      Hashtbl.replace t.proposed inst v;
      Hashtbl.replace t.inflight key inst;
      broadcast t (Wire.Mp_accept { inst; pn = t.my_pn; v })
    end

(* Losing leadership: return batch-buffered commands to the pending
   queue; they are re-proposed at the next successful election. *)
let demote t =
  if t.iam_leader then begin
    t.iam_leader <- false;
    (* Forfeit the lease immediately: correct (the grants only get
       staler) and it stops the renew loop at its next firing. *)
    Hashtbl.reset t.grants;
    while not (Queue.is_empty t.bat_buf) do
      let v = Queue.pop t.bat_buf in
      Hashtbl.remove t.bat_keys (Wire.value_key v);
      Queue.push v t.pending
    done;
    t.bat_overdue <- false;
    cancel_batch_timer t
  end

let drain_pending t =
  if t.iam_leader then begin
    while not (Queue.is_empty t.pending) do
      propose_value t (Queue.pop t.pending)
    done;
    if batching_on t then try_flush t
  end

let bump_next_inst t =
  let high = Hashtbl.fold (fun inst _ acc -> max inst acc) t.proposed (-1) in
  t.next_inst <- max t.next_inst (max (high + 1) (Replica_core.first_gap t.core))

(* ----- leader lease (Section: linearizable local reads) ------------------

   The leader periodically broadcasts [Le_renew] stamped with its own
   clock; each replica that still recognizes this leadership answers
   [Le_grant], echoing the stamp, and promises not to help elect a
   different owner for [lease] on its own clock from receipt. The leader
   believes it holds the lease while a majority of grants (its own
   included) are younger than [sent + lease - lease_skew] on its own
   clock. Receipt is never earlier than transmission, so with clock
   rates within [lease_skew] of each other the follower's promise
   always outlives the leader's belief — a new leader can't be elected,
   and hence no conflicting write can commit, while any stale leader
   still thinks it may serve reads locally. *)

let lease_on t = t.cfg.lease > 0

(* A majority of grants still young enough, on our own clock. *)
let lease_valid t ~at =
  Hashtbl.fold (fun _ exp n -> if exp > at then n + 1 else n) t.grants 0
  >= majority t

(* Refuse to help depose the grant holder while our promise stands.
   [Pn.bottom]'s owner (-1) matches nobody, so a post-recovery blanket
   refusal blocks everyone for one lease window. *)
let grant_blocks t ~owner ~at =
  lease_on t && at < t.grant_until && owner <> t.grant_holder.Pn.owner

let rec lease_loop t pn =
  if t.iam_leader && Pn.equal t.my_pn pn then begin
    broadcast t (Wire.Le_renew { pn; sent = now t });
    t.env.Node_env.after
      ~delay:(max 1 (t.cfg.lease / 3))
      (fun () -> lease_loop t pn)
  end

let on_renew t ~src ~pn ~sent =
  let at = now t in
  if Pn.(pn >= t.promised) && not (grant_blocks t ~owner:pn.Pn.owner ~at)
  then begin
    t.grant_holder <- pn;
    t.grant_until <- max t.grant_until (at + t.cfg.lease);
    send t src (Wire.Le_grant { pn; sent })
  end

let on_grant t ~src ~pn ~sent =
  if t.iam_leader && Pn.equal t.my_pn pn then
    Hashtbl.replace t.grants src (sent + t.cfg.lease - t.cfg.lease_skew)

(* Serving a read locally is linearizable only if the store already
   reflects everything any leader ever acked: every proposed instance
   executed ([first_gap] caught up to [next_inst]) — a fresh leader
   re-drives adopted instances before this holds — and the lease
   majority-fresh. *)
let lease_read t cmd =
  if
    lease_on t && t.iam_leader
    (* Our own acks happen on execution; [read_floor] covers instances a
       previous term or a forwarding replica could have acked. Buffered
       values have no instance yet, hence the empty-batch condition
       (see [flush_batch]). *)
    && Replica_core.first_gap t.core > t.read_floor
    && Queue.is_empty t.bat_buf
    && lease_valid t ~at:(now t)
  then Replica_core.local_read t.core cmd
  else None

(* Phase 1: claim leadership with a fresh number; retry with backoff
   while no majority answers. *)
let rec start_election t =
  if not (t.iam_leader || t.electing <> None) then begin
    let pn = fresh_pn t in
    t.env.Node_env.note_phase ~phase:"multipaxos:election";
    t.electing <- Some pn;
    t.election_no <- t.election_no + 1;
    t.n_elections <- t.n_elections + 1;
    let this_election = t.election_no in
    t.promise_count <- 0;
    Hashtbl.reset t.promise_best;
    broadcast t (Wire.Mp_prepare { pn; low = Replica_core.first_gap t.core });
    (* Exponential backoff: rivals desynchronize, and on slow networks
       the retry never preempts answers still in flight. *)
    let scale = min 32 (1 lsl min 5 t.election_streak) in
    let base = t.cfg.election_timeout * scale in
    let delay = base + Rng.int t.rng (max 1 (base / 2)) in
    t.election_timer <-
      Some
        (t.env.Node_env.after_cancel ~delay (fun () ->
             t.election_timer <- None;
             if
               t.election_no = this_election
               && t.electing <> None
               && not t.iam_leader
             then begin
               t.electing <- None;
               t.election_streak <- t.election_streak + 1;
               start_election t
             end))
  end

let become_leader t pn =
  t.env.Node_env.note_phase ~phase:"multipaxos:leader";
  t.iam_leader <- true;
  t.electing <- None;
  (match t.election_timer with
   | Some tm ->
     Node_env.cancel_timer tm;
     t.election_timer <- None
   | None -> ());
  t.election_streak <- 0;
  t.my_pn <- pn;
  if lease_on t then begin
    Hashtbl.reset t.grants;
    lease_loop t pn
  end;
  (* Adopt the highest-numbered accepted value per instance reported by
     the promising majority, then re-drive everything undecided. *)
  Hashtbl.iter (fun inst (_, v) -> Hashtbl.replace t.proposed inst v) t.promise_best;
  bump_next_inst t;
  (* Anything adopted may already have been acked under the previous
     term: no local reads until our store reflects all of it. *)
  t.read_floor <- max t.read_floor (t.next_inst - 1);
  let pairs =
    Hashtbl.fold (fun inst v acc -> (inst, v) :: acc) t.proposed []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (inst, v) ->
      if not (Replica_core.is_decided t.core ~inst) then begin
        Hashtbl.replace t.inflight (Wire.value_key v) inst;
        broadcast t (Wire.Mp_accept { inst; pn = t.my_pn; v })
      end)
    pairs;
  drain_pending t

let handle_value t v =
  match
    Replica_core.cached_result t.core ~client:v.Wire.client ~req_id:v.Wire.req_id
  with
  | Some result ->
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    Hashtbl.replace t.my_keys (Wire.value_key v) ();
    if t.iam_leader then propose_value t v
    else begin
      Queue.push v t.pending;
      start_election t
    end

let handle_request t ~src ~req_id ~cmd ~relaxed_read =
  if relaxed_read && t.cfg.relaxed_reads && Command.is_read cmd then
    match Replica_core.local_read t.core cmd with
    | Some result -> send t src (Wire.Reply { req_id; result })
    | None -> ()
  else if Command.is_read cmd then
    (* Lease fast path: linearizable, so no client opt-in needed. On a
       miss (no lease, not leader, store behind) the read pays
       consensus like any other command. *)
    match lease_read t cmd with
    | Some result ->
      t.n_lease_reads <- t.n_lease_reads + 1;
      send t src (Wire.Reply { req_id; result })
    | None -> handle_value t { Wire.client = src; req_id; cmd }
  else handle_value t { Wire.client = src; req_id; cmd }

let on_prepare t ~src ~pn ~low =
  if grant_blocks t ~owner:pn.Pn.owner ~at:(now t) then
    (* Someone else holds our lease promise: stay silent. The rival's
       election backoff retries after the grant has expired. *)
    ()
  else if Pn.(pn > t.promised) then begin
    t.promised <- pn;
    if t.iam_leader && pn.Pn.owner <> t.self then demote t;
    let accepted =
      Hashtbl.fold
        (fun inst slot acc -> if inst >= low then (inst, slot) :: acc else acc)
        t.accepted []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    send t src (Wire.Mp_promise { pn; accepted })
  end
  else send t src (Wire.Mp_reject { pn = t.promised })

let on_promise t ~pn ~accepted =
  match t.electing with
  | Some e when Pn.equal e pn ->
    t.promise_count <- t.promise_count + 1;
    List.iter
      (fun (inst, ((apn, _) as slot)) ->
        match Hashtbl.find_opt t.promise_best inst with
        | Some (bpn, _) when Pn.(bpn >= apn) -> ()
        | Some _ | None -> Hashtbl.replace t.promise_best inst slot)
      accepted;
    if t.promise_count >= majority t then become_leader t pn
  | Some _ | None -> ()

let on_reject t ~pn =
  t.pn_round <- max t.pn_round pn.Pn.round;
  if t.iam_leader && Pn.(pn > t.my_pn) then demote t;
  (* A live rival holds a higher number; if we are mid-election the
     retry timer will try again above it. *)
  ()

let on_accept t ~src ~inst ~pn ~v =
  if Pn.(pn >= t.promised) then begin
    t.promised <- pn;
    (match Hashtbl.find_opt t.accepted inst with
     | Some (apn, _) when Pn.(apn > pn) -> ()
     | Some _ | None -> Hashtbl.replace t.accepted inst (pn, v));
    match Hashtbl.find_opt t.accepted inst with
    | Some (apn, av) ->
      broadcast t (Wire.Mp_learn { inst; pn = apn; v = av })
    | None -> ()
  end
  else send t src (Wire.Mp_reject { pn = t.promised })

(* Batched accepts: one promise check covers the whole range; per slot
   the acceptor stores the value exactly as [on_accept] would, and one
   [Mp_learn_batch] broadcast replaces |vs| per-slot learns. *)
let on_accept_batch t ~src ~base ~pn ~vs =
  if Pn.(pn >= t.promised) then begin
    t.promised <- pn;
    let out =
      Array.mapi
        (fun i v ->
          let inst = base + i in
          (match Hashtbl.find_opt t.accepted inst with
           | Some (apn, _) when Pn.(apn > pn) -> ()
           | Some _ | None -> Hashtbl.replace t.accepted inst (pn, v));
          match Hashtbl.find_opt t.accepted inst with
          | Some (_, av) -> av
          | None -> v)
        vs
    in
    broadcast t (Wire.Mp_learn_batch { base; pn; vs = out })
  end
  else send t src (Wire.Mp_reject { pn = t.promised })

let on_learn t ~src ~inst ~pn ~v =
  if not (Replica_core.is_decided t.core ~inst) then begin
    let key = (inst, pn) in
    let tally =
      match Hashtbl.find_opt t.tallies key with
      | Some tl -> tl
      | None ->
        let tl = { v; srcs = [] } in
        Hashtbl.add t.tallies key tl;
        tl
    in
    if not (List.mem src tally.srcs) then begin
      tally.srcs <- src :: tally.srcs;
      if List.length tally.srcs >= majority t then begin
        Hashtbl.remove t.tallies key;
        learn_value t ~inst tally.v
      end
    end
  end

let handle t ~src msg =
  match msg with
  | Wire.Request { req_id; cmd; relaxed_read } ->
    handle_request t ~src ~req_id ~cmd ~relaxed_read
  | Wire.Forward { v } ->
    handle_value t v;
    (* The forwarder replies to its own client when *it* executes —
       possibly before we do: block local reads until our store
       reflects the forwarded write. *)
    if t.iam_leader then begin
      t.read_floor <- max t.read_floor (t.next_inst - 1);
      if not (Queue.is_empty t.bat_buf) then t.bat_has_fwd <- true
    end
  | Wire.Mp_prepare { pn; low } -> on_prepare t ~src ~pn ~low
  | Wire.Mp_promise { pn; accepted } -> on_promise t ~pn ~accepted
  | Wire.Mp_reject { pn } -> on_reject t ~pn
  | Wire.Mp_accept { inst; pn; v } -> on_accept t ~src ~inst ~pn ~v
  | Wire.Mp_learn { inst; pn; v } -> on_learn t ~src ~inst ~pn ~v
  | Wire.Mp_accept_batch { base; pn; vs } -> on_accept_batch t ~src ~base ~pn ~vs
  | Wire.Mp_learn_batch { base; pn; vs } ->
    Array.iteri (fun i v -> on_learn t ~src ~inst:(base + i) ~pn ~v) vs
  | Wire.Le_renew { pn; sent } -> if lease_on t then on_renew t ~src ~pn ~sent
  | Wire.Le_grant { pn; sent } -> if lease_on t then on_grant t ~src ~pn ~sent
  | Wire.Reply _ | Wire.Op_prepare_request _ | Wire.Op_prepare_response _
  | Wire.Op_abandon _ | Wire.Op_accept_request _ | Wire.Op_learn _
  | Wire.Op_accept_batch _ | Wire.Op_learn_batch _
  | Wire.Pu_prepare _ | Wire.Pu_promise _ | Wire.Pu_reject _ | Wire.Pu_accept _
  | Wire.Pu_accepted _ | Wire.Pu_nack _ | Wire.Pu_learn _ | Wire.Pu_read _
  | Wire.Pu_read_reply _ | Wire.Ls_req _ | Wire.Ls_reply _ | Wire.Tp_prepare _
  | Wire.Tp_ack _ | Wire.Tp_commit _ | Wire.Tp_commit_ack _ | Wire.Tp_rollback _ | Wire.Tp_nack _ | Wire.Bp_prepare _ | Wire.Bp_promise _ | Wire.Bp_reject _ | Wire.Bp_accept _ | Wire.Bp_learn _ | Wire.Mn_accept _ | Wire.Mn_learn _ | Wire.Cp_accept _ | Wire.Cp_accepted _ | Wire.Cp_learn _ | Wire.Cp_state _ ->
    ()

let validate_config config =
  if Array.length config.replicas < 1 then
    invalid_arg "Multipaxos: need at least one replica";
  if not (Array.exists (fun r -> r = config.initial_leader) config.replicas)
  then
    invalid_arg
      (Printf.sprintf "Multipaxos: initial_leader %d is not a replica"
         config.initial_leader);
  if config.max_batch < 1 then
    invalid_arg "Multipaxos: max_batch must be >= 1";
  if config.window < 0 then invalid_arg "Multipaxos: window must be >= 0";
  if config.lease < 0 then invalid_arg "Multipaxos: lease must be >= 0";
  if config.lease_skew < 0 then
    invalid_arg "Multipaxos: lease_skew must be >= 0";
  if config.lease > 0 && config.lease_skew >= config.lease then
    invalid_arg "Multipaxos: lease_skew must be < lease"

let create ~env ~config =
  validate_config config;
  {
    env;
    cfg = config;
    self = env.Node_env.id;
    core = Replica_core.create ~replica:env.Node_env.id;
    rng = Rng.split env.Node_env.rng;
    iam_leader = false;
    my_pn = Pn.bottom;
    pn_round = 0;
    electing = None;
    election_no = 0;
    election_timer = None;
    promise_count = 0;
    promise_best = Hashtbl.create 64;
    proposed = Hashtbl.create 256;
    inflight = Hashtbl.create 256;
    pending = Queue.create ();
    next_inst = 0;
    my_keys = Hashtbl.create 64;
    bat_buf = Queue.create ();
    bat_keys = Hashtbl.create 64;
    bat_inflight = 0;
    bat_remaining = Hashtbl.create 32;
    slot_batch = Hashtbl.create 256;
    bat_timer = None;
    bat_overdue = false;
    promised = Pn.bottom;
    accepted = Hashtbl.create 256;
    tallies = Hashtbl.create 256;
    n_elections = 0;
    election_streak = 0;
    grant_holder = Pn.bottom;
    grant_until = 0;
    grants = Hashtbl.create 8;
    n_lease_reads = 0;
    read_floor = -1;
    bat_has_fwd = false;
  }

let start t = if t.self = t.cfg.initial_leader then start_election t

(* ----- crash-recovery ---------------------------------------------------- *)

(* The collapsed replica's durable registers: the learner's decided log
   and the acceptor's promise / accepted table (a Paxos acceptor that
   forgets an acceptance can let a new leader decide an instance twice),
   plus the proposal-number round (a recovered proposer reusing a pn
   with a different value would corrupt the (inst, pn)-keyed learn
   tallies of live learners). Leadership, elections, pending queues and
   tallies are volatile — re-derived by the protocol after restart. *)
type stable = {
  st_decisions : (int * Wire.value) list;
  st_promised : Pn.t;
  st_accepted : (int * (Pn.t * Wire.value)) list;
  st_pn_round : int;
}

let stable t =
  {
    st_decisions = Replica_core.decisions_from t.core ~from_:0;
    st_promised = t.promised;
    st_accepted = Hashtbl.fold (fun i s acc -> (i, s) :: acc) t.accepted [];
    st_pn_round = t.pn_round;
  }

let recover ~env ~config ~stable:st =
  let t = create ~env ~config in
  List.iter
    (fun (inst, v) -> ignore (Replica_core.learn t.core ~inst v))
    st.st_decisions;
  t.promised <- st.st_promised;
  List.iter (fun (inst, s) -> Hashtbl.replace t.accepted inst s) st.st_accepted;
  t.pn_round <- st.st_pn_round;
  bump_next_inst t;
  (* Lease state is volatile on purpose, but forgetting an outstanding
     grant would let a restarted replica help depose a leader that
     still believes it may read locally. Sit out one full lease window
     against everyone ([Pn.bottom]'s owner matches no proposer) — the
     longest any pre-crash promise could still be alive. *)
  if config.lease > 0 then begin
    t.grant_holder <- Pn.bottom;
    t.grant_until <- env.Node_env.now () + config.lease
  end;
  (* Rejoin passively: a recovered replica answers prepares and accepts
     from its restored registers and catches up through the leader's
     re-proposal of its undecided range (Mp_prepare carries [low] =
     first gap, so the next election replays what we missed); it only
     campaigns itself when a client knocks. *)
  t

let is_leader t = t.iam_leader
let replica_core t = t.core
let elections t = t.n_elections
let pending_count t = Queue.length t.pending
let lease_reads t = t.n_lease_reads
let holds_lease t = t.iam_leader && lease_on t && lease_valid t ~at:(now t)

(* Structural fingerprint for the explorer's visited-state table; same
   conventions as {!Onepaxos.digest}: hashtables in sorted key order,
   timestamps relative to the current clock, timers as presence bits. *)
let digest t =
  let tbl_list tbl =
    Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] |> List.sort compare
  in
  let clock = now t in
  let rel at = at - clock in
  let proposer =
    ( t.iam_leader, t.my_pn, t.pn_round, t.electing, t.promise_count,
      tbl_list t.promise_best, tbl_list t.proposed, tbl_list t.inflight,
      List.of_seq (Queue.to_seq t.pending), t.next_inst, tbl_list t.my_keys )
  in
  let batching =
    ( List.of_seq (Queue.to_seq t.bat_buf), tbl_list t.bat_keys,
      t.bat_inflight,
      Hashtbl.fold (fun b r l -> (b, !r) :: l) t.bat_remaining []
      |> List.sort compare,
      tbl_list t.slot_batch, t.bat_timer <> None, t.bat_overdue,
      t.bat_has_fwd )
  in
  let acceptor = (t.promised, tbl_list t.accepted) in
  let learner =
    Hashtbl.fold
      (fun k tl l -> (k, tl.v, List.sort compare tl.srcs) :: l)
      t.tallies []
    |> List.sort compare
  in
  let lease =
    ( t.grant_holder, rel t.grant_until,
      Hashtbl.fold (fun src at l -> (src, rel at) :: l) t.grants []
      |> List.sort compare,
      t.read_floor )
  in
  Hashtbl.hash_param 1000 1000
    ( Replica_core.digest t.core, proposer, batching, acceptor, learner,
      lease, t.election_streak )

module Node_env = Ci_engine.Node_env
module Command = Ci_rsm.Command
module Atomicity = Ci_rsm.Atomicity

(* Stable pure hash partition of the keyspace. Fibonacci-style mixing
   keeps adjacent keys off the same group, so small keyspaces still
   spread; [land max_int] clears the sign bit before the modulo. *)
let group_of_key ~groups key =
  if groups <= 1 then 0
  else ((key + 1) * 0x9E3779B1 lxor (key lsr 7)) land max_int mod groups

let group_of_cmd ~groups cmd =
  match Command.key_of cmd with
  | Some key -> group_of_key ~groups key
  | None -> 0

let groups_of ~groups cmd =
  List.sort_uniq compare
    (match Command.keys_of cmd with
    | [] -> [ 0 ]
    | keys -> List.map (group_of_key ~groups) keys)

module Router = struct
  type config = {
    groups : int;  (* shard count *)
    leader_of : int array;  (* group -> entry replica node id *)
    retry_timeout : int;  (* per-transaction retransmit period, ns *)
  }

  type phase = Preparing | Finishing of bool | Finished of bool

  type txn = {
    tx_id : int;
    tx_client : int;
    tx_req : int;
    tx_parts : (int * int * int) array; (* group, key, data; ascending group *)
    mutable tx_phase : phase;
    tx_resp : bool array; (* per part: responded in the current phase *)
    tx_ok : bool array; (* per part: prepare acquired the lock *)
  }

  type t = {
    env : Wire.t Node_env.t;
    cfg : config;
    txns : (int, txn) Hashtbl.t;
    by_part : (int, int) Hashtbl.t; (* leader node id -> group *)
    by_req : (int * int, int) Hashtbl.t; (* (client, req_id) -> tx_id *)
    done_reqs : (int * int, Command.result) Hashtbl.t;
    mutable next_tx : int;
    mutable n_forwarded : int;
    mutable n_committed : int;
    mutable n_aborted : int;
  }

  let create ~env ~config =
    if config.groups < 1 then invalid_arg "Shard.Router.create: groups >= 1";
    if Array.length config.leader_of <> config.groups then
      invalid_arg "Shard.Router.create: one leader per group";
    if config.retry_timeout <= 0 then
      invalid_arg "Shard.Router.create: retry_timeout must be > 0";
    let by_part = Hashtbl.create 8 in
    Array.iteri (fun g leader -> Hashtbl.replace by_part leader g) config.leader_of;
    {
      env;
      cfg = config;
      txns = Hashtbl.create 256;
      by_part;
      by_req = Hashtbl.create 256;
      done_reqs = Hashtbl.create 256;
      next_tx = 0;
      n_forwarded = 0;
      n_committed = 0;
      n_aborted = 0;
    }

  let send t ~dst msg = t.env.Node_env.send ~dst msg

  let part_value t tx i =
    let _, key, data = tx.tx_parts.(i) in
    {
      Wire.client = t.env.Node_env.id;
      req_id = tx.tx_id;
      cmd = Command.Prep { txn = tx.tx_id; key; data };
    }

  let fin_value t tx i ~commit =
    let _, key, _ = tx.tx_parts.(i) in
    {
      Wire.client = t.env.Node_env.id;
      req_id = tx.tx_id;
      cmd = Command.Fin { txn = tx.tx_id; key; commit };
    }

  let send_part t tx i =
    let group, _, _ = tx.tx_parts.(i) in
    let dst = t.cfg.leader_of.(group) in
    match tx.tx_phase with
    | Preparing ->
      send t ~dst (Wire.Tp_prepare { inst = tx.tx_id; v = part_value t tx i })
    | Finishing commit ->
      send t ~dst
        (Wire.Tp_commit { inst = tx.tx_id; v = fin_value t tx i ~commit })
    | Finished _ -> ()

  let resend_pending t tx =
    Array.iteri (fun i r -> if not r then send_part t tx i) tx.tx_resp

  let complete t tx commit =
    tx.tx_phase <- Finished commit;
    if commit then t.n_committed <- t.n_committed + 1
    else t.n_aborted <- t.n_aborted + 1;
    let result = if commit then Command.Done else Command.Swapped false in
    Hashtbl.replace t.done_reqs (tx.tx_client, tx.tx_req) result;
    send t ~dst:tx.tx_client (Wire.Reply { req_id = tx.tx_req; result })

  (* Phase 2: finish every part that acquired its lock (all of them on
     commit). A part whose prepare was refused holds no lock, so an
     abort owes it nothing. Phase 2 for a shard is only ever sent after
     that shard answered phase 1, which keeps the shard's own log
     ordered: its [Fin] can never be decided ahead of its [Prep]. *)
  let start_finish t tx commit =
    tx.tx_phase <- Finishing commit;
    Array.iteri
      (fun i ok ->
        tx.tx_resp.(i) <- not ok;
        if ok then send_part t tx i)
      tx.tx_ok;
    if Array.for_all Fun.id tx.tx_resp then complete t tx commit

  let rec arm_retry t tx =
    t.env.Node_env.after ~delay:t.cfg.retry_timeout (fun () ->
        match tx.tx_phase with
        | Finished _ -> ()
        | Preparing | Finishing _ ->
          resend_pending t tx;
          arm_retry t tx)

  let start_txn t ~client ~req_id parts =
    let tx_id = (t.env.Node_env.id * 1_048_576) + t.next_tx in
    t.next_tx <- t.next_tx + 1;
    let tx =
      {
        tx_id;
        tx_client = client;
        tx_req = req_id;
        tx_parts = Array.of_list parts;
        tx_phase = Preparing;
        tx_resp = Array.make (List.length parts) false;
        tx_ok = Array.make (List.length parts) false;
      }
    in
    Hashtbl.replace t.txns tx_id tx;
    Hashtbl.replace t.by_req (client, req_id) tx_id;
    Array.iteri (fun i _ -> send_part t tx i) tx.tx_parts;
    arm_retry t tx

  let part_index tx ~group =
    let rec find i =
      if i >= Array.length tx.tx_parts then None
      else
        let g, _, _ = tx.tx_parts.(i) in
        if g = group then Some i else find (i + 1)
    in
    find 0

  let on_prepare_response t ~src ~txn ~ok =
    match Hashtbl.find_opt t.txns txn with
    | None -> ()
    | Some tx -> (
      match tx.tx_phase with
      | Preparing -> (
        match Hashtbl.find_opt t.by_part src with
        | None -> ()
        | Some group -> (
          match part_index tx ~group with
          | None -> ()
          | Some i ->
            if not tx.tx_resp.(i) then begin
              tx.tx_resp.(i) <- true;
              tx.tx_ok.(i) <- ok
            end;
            if Array.for_all Fun.id tx.tx_resp then
              start_finish t tx (Array.for_all Fun.id tx.tx_ok)))
      | Finishing _ | Finished _ -> () (* stale retransmit answer *))

  let on_commit_ack t ~src ~txn =
    match Hashtbl.find_opt t.txns txn with
    | None -> ()
    | Some tx -> (
      match tx.tx_phase with
      | Finishing commit -> (
        match Hashtbl.find_opt t.by_part src with
        | None -> ()
        | Some group -> (
          match part_index tx ~group with
          | None -> ()
          | Some i ->
            tx.tx_resp.(i) <- true;
            if Array.for_all Fun.id tx.tx_resp then complete t tx commit))
      | Preparing | Finished _ -> ())

  let forward t ~client ~req_id ~cmd =
    let group = group_of_cmd ~groups:t.cfg.groups cmd in
    t.n_forwarded <- t.n_forwarded + 1;
    send t ~dst:t.cfg.leader_of.(group)
      (Wire.Forward { v = { Wire.client; req_id; cmd } })

  let handle_request t ~src ~req_id ~cmd =
    match Hashtbl.find_opt t.done_reqs (src, req_id) with
    | Some result -> send t ~dst:src (Wire.Reply { req_id; result })
    | None -> (
      match groups_of ~groups:t.cfg.groups cmd with
      | [ _ ] | [] -> forward t ~client:src ~req_id ~cmd
      | _ :: _ :: _ -> (
        match cmd with
        | Command.Mput { k1; d1; k2; d2 } ->
          (* A client retry of an in-flight transaction must not start
             a second one: the reply comes when the first resolves. *)
          if not (Hashtbl.mem t.by_req (src, req_id)) then begin
            let part k d = (group_of_key ~groups:t.cfg.groups k, k, d) in
            let parts = List.sort compare [ part k1 d1; part k2 d2 ] in
            start_txn t ~client:src ~req_id parts
          end
        | Command.Range _ ->
          (* Ranges are single-shard by contract: a span crossing the
             hash partition has no snapshot to read from, so refuse it
             deterministically rather than return a torn result. *)
          send t ~dst:src (Wire.Reply { req_id; result = Command.Rejected })
        | _ ->
          (* Multi-group routing is defined only for Mput today. *)
          forward t ~client:src ~req_id ~cmd))

  let handle t ~src msg =
    match msg with
    | Wire.Request { req_id; cmd; relaxed_read = _ } ->
      handle_request t ~src ~req_id ~cmd
    | Wire.Tp_ack { inst } -> on_prepare_response t ~src ~txn:inst ~ok:true
    | Wire.Tp_nack { inst } -> on_prepare_response t ~src ~txn:inst ~ok:false
    | Wire.Tp_commit_ack { inst } -> on_commit_ack t ~src ~txn:inst
    | _ -> () (* routers speak only the client and 2PC vocabularies *)

  let forwarded t = t.n_forwarded
  let committed t = t.n_committed
  let aborted t = t.n_aborted

  let txn_reports t =
    Hashtbl.fold
      (fun _ tx acc ->
        {
          Atomicity.txn = tx.tx_id;
          client = tx.tx_client;
          req_id = tx.tx_req;
          parts = Array.to_list tx.tx_parts;
          outcome =
            (match tx.tx_phase with
            | Finished true -> Atomicity.Committed
            | Finished false -> Atomicity.Aborted
            | Preparing | Finishing _ -> Atomicity.Unresolved);
        }
        :: acc)
      t.txns []
    |> List.sort (fun (a : Atomicity.txn) b -> compare a.txn b.txn)
end

(** 2PC in its Barrelfish agreement form (Section 2.2).

    A fixed coordinator drives every update through two phases: it
    broadcasts [Tp_prepare] and waits for an acknowledgement from {e
    all} replicas, then broadcasts [Tp_commit] and again waits for all
    commit acknowledgements before answering the client. The protocol
    is {b blocking}: a single slow replica (including the coordinator
    itself) stalls every update — the behaviour Section 2.2 and
    Figure 11's contrast demonstrate. There is no leader change.

    When [local_reads] is on (the 2PC-Joint configuration of §7.5), a
    replica answers [Get] commands from its local store, provided it
    holds no prepared-but-uncommitted instance — i.e. the read does not
    fall "in the gap between two phases" — otherwise the read is
    forwarded to the coordinator like a write. *)

type config = {
  replicas : int array;  (** Machine node ids of all replicas. *)
  coordinator : int;  (** The fixed coordinator (member of [replicas]). *)
  local_reads : bool;  (** Serve quiescent reads locally (2PC-Joint). *)
}

val default_config : replicas:int array -> config
(** [default_config ~replicas] coordinates from [replicas.(0)], without
    local reads. *)

type t
(** One 2PC replica. *)

val create : env:Wire.t Ci_engine.Node_env.t -> config:config -> t
(** [create ~env ~config] initializes the replica. *)

val handle : t -> src:int -> Wire.t -> unit
(** [handle t ~src msg] processes a client or protocol message. *)

val replica_core : t -> Replica_core.t
(** [replica_core t] exposes learner/executor state. *)

val is_coordinator : t -> bool
(** [is_coordinator t] is whether this replica coordinates. *)

val prepared_count : t -> int
(** [prepared_count t] is the number of locked (prepared, uncommitted)
    instances this participant holds. *)

val local_read_count : t -> int
(** [local_read_count t] counts reads served without the coordinator. *)

(** Participant side of 2PC {e over} per-shard consensus (the sharded
    deployment's cross-shard path). A router node coordinates; the
    participant runs on a shard replica and drives every
    [Tp_prepare]/[Tp_commit] through the shard's own consensus log as a
    {!Ci_rsm.Command.Prep}/{!Ci_rsm.Command.Fin} self-request, so locks
    and staged writes are replicated state. Idempotent under
    coordinator retries; holds no durable state of its own. *)
module Participant : sig
  type p
  (** One shard-side participant. *)

  val create : env:Wire.t Ci_engine.Node_env.t -> p
  (** [create ~env] prepares a participant on the node behind [env]
      (normally a shard's initial leader: the node routers address). *)

  val handle : p -> src:int -> Wire.t -> bool
  (** [handle t ~src msg] is [true] when the participant consumed the
      message ([Tp_prepare], [Tp_commit], or a consensus [Reply] to one
      of its own submissions); the caller hands everything else to the
      consensus core sharing the node. *)

  val issued : p -> (int * Ci_rsm.Command.t) list
  (** [issued t] is every [(req_id, command)] this participant
      submitted to its shard's consensus — ground truth for the
      non-triviality check, alongside the clients' logs. *)

  val prepares : p -> int
  (** Distinct transactions prepared. *)

  val finishes : p -> int
  (** Distinct transactions finished (commit or abort). *)

  val inflight : p -> int
  (** Submissions whose consensus reply is still pending. *)
end

val digest : t -> int
(** [digest t] is a structural fingerprint of the replica's protocol
    state for the explorer's visited-state table; hashtables are hashed
    in sorted key order and timestamps relative to the current clock.
    Equal states always produce equal digests. *)

(** 2PC in its Barrelfish agreement form (Section 2.2).

    A fixed coordinator drives every update through two phases: it
    broadcasts [Tp_prepare] and waits for an acknowledgement from {e
    all} replicas, then broadcasts [Tp_commit] and again waits for all
    commit acknowledgements before answering the client. The protocol
    is {b blocking}: a single slow replica (including the coordinator
    itself) stalls every update — the behaviour Section 2.2 and
    Figure 11's contrast demonstrate. There is no leader change.

    When [local_reads] is on (the 2PC-Joint configuration of §7.5), a
    replica answers [Get] commands from its local store, provided it
    holds no prepared-but-uncommitted instance — i.e. the read does not
    fall "in the gap between two phases" — otherwise the read is
    forwarded to the coordinator like a write. *)

type config = {
  replicas : int array;  (** Machine node ids of all replicas. *)
  coordinator : int;  (** The fixed coordinator (member of [replicas]). *)
  local_reads : bool;  (** Serve quiescent reads locally (2PC-Joint). *)
}

val default_config : replicas:int array -> config
(** [default_config ~replicas] coordinates from [replicas.(0)], without
    local reads. *)

type t
(** One 2PC replica. *)

val create : env:Wire.t Ci_engine.Node_env.t -> config:config -> t
(** [create ~env ~config] initializes the replica. *)

val handle : t -> src:int -> Wire.t -> unit
(** [handle t ~src msg] processes a client or protocol message. *)

val replica_core : t -> Replica_core.t
(** [replica_core t] exposes learner/executor state. *)

val is_coordinator : t -> bool
(** [is_coordinator t] is whether this replica coordinates. *)

val prepared_count : t -> int
(** [prepared_count t] is the number of locked (prepared, uncommitted)
    instances this participant holds. *)

val local_read_count : t -> int
(** [local_read_count t] counts reads served without the coordinator. *)

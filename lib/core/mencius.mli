(** Mencius: multi-leader Paxos by instance-space partitioning (§8).

    The paper's main multi-leader point of comparison. Every replica is
    the pre-assigned leader of the instances congruent to its index
    (replica [i] of [n] owns instances [i], [i+n], [i+2n], ...), so each
    replica can order its own clients' commands without a central
    leader — distributing the transmission load the single leader
    bottlenecks in Multi-Paxos.

    A replica whose clients are idle would stall the log (instances
    execute in order), so when it observes the frontier advancing past
    its unused slots it cedes them with {e skip} no-ops. As the paper
    notes, skips mean idle leaders still transmit, "which would not
    help the load balancing objective" — visible in this
    implementation's message counts.

    Scope: the revocation sub-protocol (taking over a {e failed}
    leader's instances) is not implemented; a dead owner stalls the log,
    so use Mencius in fault-free comparisons (the paper's §8 discussion
    is about load, not fault handling). *)

type config = {
  replicas : int array;  (** Machine node ids; index = ownership class. *)
  skip_lag : int;
      (** Cede owned slots this far behind the observed frontier
          (0 = immediately). *)
  relaxed_reads : bool;  (** Serve relaxed [Get]s locally. *)
}

val default_config : replicas:int array -> config
(** [default_config ~replicas] with immediate skips. *)

type t
(** One Mencius replica. *)

val create : env:Wire.t Ci_engine.Node_env.t -> config:config -> t
(** [create ~env ~config] initializes the replica; route messages to
    {!handle}. No [start] step is needed — ownership is static. *)

val handle : t -> src:int -> Wire.t -> unit
(** [handle t ~src msg] processes a client or protocol message. *)

val replica_core : t -> Replica_core.t
(** [replica_core t] exposes learner/executor state. *)

val skips_proposed : t -> int
(** [skips_proposed t] counts the no-op slots this replica ceded. *)

val owned_used : t -> int
(** [owned_used t] counts the owned slots filled with real commands. *)

val is_skip_value : Wire.value -> bool
(** [is_skip_value v] identifies the placeholder a skip decides (used by
    the consistency layer to exempt skips from the proposed-by-a-client
    check). *)

val digest : t -> int
(** [digest t] is a structural fingerprint of the replica's protocol
    state for the explorer's visited-state table; hashtables are hashed
    in sorted key order and timestamps relative to the current clock.
    Equal states always produce equal digests. *)

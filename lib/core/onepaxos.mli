(** 1Paxos: non-blocking agreement with a single active acceptor.

    The paper's contribution (Sections 4–5, Appendix A). Each replica
    plays proposer and learner; exactly {e one} replica at a time plays
    the active acceptor, the rest being cold backups. The failure-free
    data path per client command is therefore:

    {v client --request--> leader --accept--> acceptor --learn--> all
       learners, leader --reply--> client v}

    i.e. five boundary-crossing messages on three replicas, versus ten
    for collapsed Multi-Paxos or 2PC — the factor-of-two reduction of
    Figure 3.

    Availability of the acceptor role is restored through
    {!Paxos_utility}: the leader replaces a suspected acceptor
    ([AcceptorChange], carrying its uncommitted proposals), any proposer
    replaces a suspected leader ([LeaderChange]), and the freshness
    handshake ([must_be_fresh] / [IamFresh]) prevents a silently reset
    acceptor from being adopted with lost state. With both the leader
    and the acceptor slow at the same time the protocol stalls — but
    never loses consistency — and resumes when either recovers. *)

type config = {
  replicas : int array;  (** Machine node ids of all replicas. *)
  initial_leader : int;  (** Seeded leader (a member of [replicas]). *)
  initial_acceptor : int;
      (** Seeded active acceptor; place it on a different node than the
          leader (Section 5.4). *)
  acceptor_timeout : Ci_engine.Sim_time.t;
      (** Age of the oldest unanswered accept before the leader suspects
          the acceptor. *)
  prepare_timeout : Ci_engine.Sim_time.t;
      (** Wait for a [prepare_response] before suspecting the acceptor
          (covers the freshness-mismatch silence). *)
  check_period : Ci_engine.Sim_time.t;  (** Failure-detector scan period. *)
  pu_timeout : Ci_engine.Sim_time.t;  (** PaxosUtility retry timeout. *)
  relaxed_reads : bool;
      (** Serve [Get] commands marked [relaxed_read] from the local
          store without consensus (§7.5's relaxed consistency). *)
  max_batch : int;
      (** Commands per batched proposal ([Op_accept_batch]); [1] (the
          default) keeps the paper's one-command-per-message protocol
          byte-identical. *)
  batch_delay : Ci_engine.Sim_time.t;
      (** How long the leader holds a partial batch hoping for company;
          [0] flushes immediately. Only meaningful with the batching
          layer active. *)
  window : int;
      (** Pipeline depth: maximum batches concurrently in flight.
          [0] (the default) leaves the in-flight count unbounded, as in
          the paper's protocol. Setting it also activates the batching
          layer even at [max_batch = 1]. *)
  lease : Ci_engine.Sim_time.t;
      (** Leader-lease duration; [0] (the default) disables leases and
          leaves the protocol byte-identical. When on, the leader's
          failure-detector tick broadcasts [Le_renew] every [lease / 3];
          a granting replica promises not to help {e commit} a
          [Leader_change] naming a different owner for [lease] on its
          own clock (it silently vetoes such [Pu_accept]s), and the
          leader serves linearizable [Get]/[Range] locally while a
          majority of echoed grants are younger than
          [sent + lease - lease_skew] on {e its} clock. Failover while a
          lease is held costs up to one extra [lease] of unavailability
          — the classic trade. *)
  lease_skew : Ci_engine.Sim_time.t;
      (** Assumed bound on clock-{e rate} divergence over one lease
          window (clocks are never compared across nodes). The leader
          retires each grant [lease_skew] early, so a follower whose
          clock runs fast by less than this still honors its promise
          beyond the leader's belief. Must be [< lease]. *)
  unsafe_stale_adoption : bool;
      (** {b Test-only.} Re-introduces a historical split-brain: a
          deposed candidate's stale [Op_prepare_request] can still
          promote it to leader after the configuration log has moved
          leadership elsewhere (the believed-leader gate on adoption,
          the retry abandonment on prepare timeout, and the takeover
          cancellation on a rival [Leader_change] are all disabled).
          Exists so the model checker ({!Ci_explore}) can demonstrate
          that it finds and shrinks this bug class. Never enable
          outside tests. *)
}

val default_config : replicas:int array -> config
(** [default_config ~replicas] uses [replicas.(0)] as leader,
    [replicas.(1)] as acceptor, and timeouts suited to the multicore
    parameter preset (sub-millisecond detection). Requires at least two
    replicas. *)

type t
(** One 1Paxos replica. *)

val create : env:Wire.t Ci_engine.Node_env.t -> config:config -> t
(** [create ~env ~config] initializes the replica on the node behind
    [env] (simulated or live). All replicas must share an identical
    [config]. The caller routes messages to {!handle}. Raises
    [Invalid_argument] if [config.initial_leader] or
    [config.initial_acceptor] is not a member of [config.replicas], if
    fewer than two replicas are given, or if [max_batch < 1] /
    [window < 0]. *)

val start : t -> unit
(** [start t] bootstraps: the initial leader adopts the initial acceptor
    (first [prepare_request]) and the failure-detector timer begins on
    every replica. Call once per replica at simulation start. *)

val handle : t -> src:int -> Wire.t -> unit
(** [handle t ~src msg] processes any client or protocol message. *)

val is_leader : t -> bool
(** [is_leader t] is whether this replica currently holds an adopted
    leadership (it received a [prepare_response] it has not lost). *)

val believed_leader : t -> int option
(** [believed_leader t] is the global leader per this replica's applied
    configuration log. *)

val active_acceptor : t -> int option
(** [active_acceptor t] is the active acceptor per the applied
    configuration log. *)

val replica_core : t -> Replica_core.t
(** [replica_core t] exposes the learner/executor state (for metrics and
    consistency checking). *)

val leader_changes : t -> int
(** [leader_changes t] counts applied [LeaderChange] entries. *)

val acceptor_changes : t -> int
(** [acceptor_changes t] counts applied [AcceptorChange] entries. *)

val pending_count : t -> int
(** [pending_count t] is the number of client commands queued but not
    yet proposed. *)

val lease_reads : t -> int
(** [lease_reads t] counts reads this replica answered locally under a
    valid leader lease (skipping the accept round entirely). *)

val holds_lease : t -> bool
(** [holds_lease t] is whether this replica is leader {e and} a majority
    of grants are unexpired right now, i.e. a local read issued at this
    instant would be served without consensus. *)

val inject_acceptor_reset : t -> unit
(** [inject_acceptor_reset t] wipes this replica's acceptor-role state
    (promise, accepted proposals) and marks it fresh — the "silent
    reboot" fault the freshness check defends against. Test hook. *)

(** {1 Crash-recovery} *)

type stable
(** The durable registers a real deployment fsyncs before answering:
    the learner's decided log, the acceptor role's highest promise and
    accepted-proposal table, the freshness flag, the proposal-round
    counter, and the embedded {!Paxos_utility} registers. Leadership
    flags, in-flight proposals, tallies and timers are volatile. *)

val stable : t -> stable
(** [stable t] snapshots the durable registers. *)

val recover :
  env:Wire.t Ci_engine.Node_env.t -> config:config -> stable:stable -> t
(** [recover ~env ~config ~stable] rebuilds a replica from its durable
    registers after a crash, on a fresh node environment. The recovered
    replica rejoins as a {e follower} regardless of its pre-crash roles:
    it resyncs the configuration log from a majority
    ({!Paxos_utility.sync}), catches its decided log up from peers
    (learner sync), and restarts its failure detector. If it was the
    leader or active acceptor before the crash, the survivors' takeover
    machinery ([LeaderChange] / [AcceptorChange]) — not the restart —
    restores those roles elsewhere. *)

val digest : t -> int
(** [digest t] is a structural fingerprint of the replica's full
    protocol state (roles, proposer, batching, acceptor, learner and
    lease registers, plus the embedded {!Replica_core} and
    {!Paxos_utility} state) for the explorer's visited-state table.
    Absolute timestamps are hashed relative to the current clock;
    hashtables are hashed in sorted key order. Equal digests do not
    prove equal states (it is a hash), but equal states always produce
    equal digests. *)

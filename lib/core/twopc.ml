module Node_env = Ci_engine.Node_env
module Command = Ci_rsm.Command

type config = { replicas : int array; coordinator : int; local_reads : bool }

let default_config ~replicas =
  if Array.length replicas < 1 then
    invalid_arg "Twopc.default_config: need at least one replica";
  { replicas; coordinator = replicas.(0); local_reads = false }

type round = {
  v : Wire.value;
  mutable acks : int;
  mutable commit_acks : int;
  mutable committed : bool;
}

type t = {
  env : Wire.t Node_env.t;
  cfg : config;
  self : int;
  core : Replica_core.t;
  others : int array; (* replicas minus self *)
  (* Coordinator. *)
  mutable next_inst : int;
  rounds : (int, round) Hashtbl.t;
  inflight : (int * int, int) Hashtbl.t;
  my_keys : (int * int, unit) Hashtbl.t;
  (* Participant. *)
  prepared : (int, Wire.value) Hashtbl.t;
  mutable n_local_reads : int;
}

let send t dst msg = t.env.Node_env.send ~dst msg
let broadcast_others t msg = Array.iter (fun dst -> send t dst msg) t.others

let learn_value t ~inst v =
  Hashtbl.remove t.inflight (Wire.value_key v);
  ignore (Replica_core.learn t.core ~inst v)

(* Coordinator: once every replica acknowledged the prepare, the update
   can no longer be refused anywhere — commit it, answer the client, and
   let the commit acknowledgements merely retire the bookkeeping. *)
let maybe_commit t ~inst round =
  if (not round.committed) && round.acks >= Array.length t.others then begin
    round.committed <- true;
    learn_value t ~inst round.v;
    broadcast_others t (Wire.Tp_commit { inst; v = round.v });
    let v = round.v in
    (match
       Replica_core.cached_result t.core ~client:v.Wire.client ~req_id:v.Wire.req_id
     with
     | Some result ->
       Hashtbl.remove t.my_keys (Wire.value_key v);
       send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
     | None ->
       (* Commits complete in instance order and execution is
          contiguous, so the result must be available. *)
       assert false);
    if Array.length t.others = 0 then Hashtbl.remove t.rounds inst
  end

let coordinate t v =
  let key = Wire.value_key v in
  Hashtbl.replace t.my_keys key ();
  match Replica_core.cached_result t.core ~client:(fst key) ~req_id:(snd key) with
  | Some result ->
    Hashtbl.remove t.my_keys key;
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    if not (Hashtbl.mem t.inflight key) then begin
      let inst = t.next_inst in
      t.next_inst <- t.next_inst + 1;
      Hashtbl.replace t.inflight key inst;
      let round = { v; acks = 0; commit_acks = 0; committed = false } in
      Hashtbl.replace t.rounds inst round;
      broadcast_others t (Wire.Tp_prepare { inst; v });
      maybe_commit t ~inst round
    end

(* A read may be answered locally unless this replica holds a
   prepared-but-uncommitted update to the same datum — the paper's "not
   received in the gap between two phases" (replicas lock their local
   copy of the datum, so the lock is per key). *)
let read_is_locked t cmd =
  match Command.key_of cmd with
  | None -> false
  | Some key ->
    Hashtbl.fold
      (fun _ (v : Wire.value) locked ->
        locked || Command.key_of v.Wire.cmd = Some key)
      t.prepared false

let handle_request t ~src ~req_id ~cmd =
  let v = { Wire.client = src; req_id; cmd } in
  if t.self = t.cfg.coordinator then coordinate t v
  else if t.cfg.local_reads && Command.is_read cmd && not (read_is_locked t cmd)
  then begin
    t.n_local_reads <- t.n_local_reads + 1;
    match cmd with
    | Command.Get { key } ->
      send t src
        (Wire.Reply { req_id; result = Command.Found (Replica_core.local_get t.core ~key) })
    | Command.Put _ | Command.Cas _ | Command.Nop -> ()
  end
  else
    (* 2PC has no leader change: hand the command to the coordinator. *)
    send t t.cfg.coordinator (Wire.Forward { v })

let handle t ~src msg =
  match msg with
  | Wire.Request { req_id; cmd; relaxed_read = _ } -> handle_request t ~src ~req_id ~cmd
  | Wire.Forward { v } ->
    if t.self = t.cfg.coordinator then coordinate t v
    else send t t.cfg.coordinator (Wire.Forward { v })
  | Wire.Tp_prepare { inst; v } ->
    Hashtbl.replace t.prepared inst v;
    send t src (Wire.Tp_ack { inst })
  | Wire.Tp_ack { inst } ->
    (match Hashtbl.find_opt t.rounds inst with
     | Some round ->
       round.acks <- round.acks + 1;
       maybe_commit t ~inst round
     | None -> ())
  | Wire.Tp_commit { inst; v } ->
    Hashtbl.remove t.prepared inst;
    learn_value t ~inst v;
    send t src (Wire.Tp_commit_ack { inst })
  | Wire.Tp_commit_ack { inst } ->
    (match Hashtbl.find_opt t.rounds inst with
     | Some round ->
       round.commit_acks <- round.commit_acks + 1;
       if round.commit_acks >= Array.length t.others then
         Hashtbl.remove t.rounds inst
     | None -> ())
  | Wire.Tp_rollback { inst } -> Hashtbl.remove t.prepared inst
  | Wire.Reply _ | Wire.Op_prepare_request _ | Wire.Op_prepare_response _
  | Wire.Op_abandon _ | Wire.Op_accept_request _ | Wire.Op_learn _
  | Wire.Pu_prepare _ | Wire.Pu_promise _ | Wire.Pu_reject _ | Wire.Pu_accept _
  | Wire.Pu_accepted _ | Wire.Pu_nack _ | Wire.Pu_learn _ | Wire.Pu_read _
  | Wire.Pu_read_reply _ | Wire.Ls_req _ | Wire.Ls_reply _ | Wire.Mp_prepare _
  | Wire.Mp_promise _ | Wire.Mp_reject _ | Wire.Mp_accept _ | Wire.Mp_learn _ | Wire.Op_accept_batch _ | Wire.Op_learn_batch _ | Wire.Mp_accept_batch _ | Wire.Mp_learn_batch _ | Wire.Bp_prepare _ | Wire.Bp_promise _ | Wire.Bp_reject _ | Wire.Bp_accept _ | Wire.Bp_learn _ | Wire.Mn_accept _ | Wire.Mn_learn _ | Wire.Cp_accept _ | Wire.Cp_accepted _ | Wire.Cp_learn _ | Wire.Cp_state _ ->
    ()

let create ~env ~config =
  let self = env.Node_env.id in
  {
    env;
    cfg = config;
    self;
    core = Replica_core.create ~replica:self;
    others = Array.of_list (List.filter (fun id -> id <> self) (Array.to_list config.replicas));
    next_inst = 0;
    rounds = Hashtbl.create 256;
    inflight = Hashtbl.create 256;
    my_keys = Hashtbl.create 64;
    prepared = Hashtbl.create 64;
    n_local_reads = 0;
  }

let replica_core t = t.core
let is_coordinator t = t.self = t.cfg.coordinator
let prepared_count t = Hashtbl.length t.prepared
let local_read_count t = t.n_local_reads

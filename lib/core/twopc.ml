module Node_env = Ci_engine.Node_env
module Command = Ci_rsm.Command

type config = { replicas : int array; coordinator : int; local_reads : bool }

let default_config ~replicas =
  if Array.length replicas < 1 then
    invalid_arg "Twopc.default_config: need at least one replica";
  { replicas; coordinator = replicas.(0); local_reads = false }

type round = {
  v : Wire.value;
  mutable acks : int;
  mutable commit_acks : int;
  mutable committed : bool;
}

type t = {
  env : Wire.t Node_env.t;
  cfg : config;
  self : int;
  core : Replica_core.t;
  others : int array; (* replicas minus self *)
  (* Coordinator. *)
  mutable next_inst : int;
  rounds : (int, round) Hashtbl.t;
  inflight : (int * int, int) Hashtbl.t;
  my_keys : (int * int, unit) Hashtbl.t;
  (* Participant. *)
  prepared : (int, Wire.value) Hashtbl.t;
  mutable n_local_reads : int;
}

let send t dst msg = t.env.Node_env.send ~dst msg
let broadcast_others t msg = Array.iter (fun dst -> send t dst msg) t.others

let reply_if_mine t (ex : Replica_core.executed) =
  let key = Wire.value_key ex.v in
  if Hashtbl.mem t.my_keys key then begin
    Hashtbl.remove t.my_keys key;
    send t ex.v.Wire.client
      (Wire.Reply { req_id = ex.v.Wire.req_id; result = ex.result })
  end

let learn_value t ~inst v =
  Hashtbl.remove t.inflight (Wire.value_key v);
  List.iter (reply_if_mine t) (Replica_core.learn t.core ~inst v)

(* Coordinator: once every replica acknowledged the prepare, the update
   can no longer be refused anywhere — commit it, answer the client, and
   let the commit acknowledgements merely retire the bookkeeping.
   Failure-free, commits complete in instance order, so execution (and
   the reply) happens inside [learn_value]; if a dropped prepare or ack
   left an earlier round open, this learn is non-contiguous and the
   reply waits until the gap fills — the client sees silence, never a
   premature answer. *)
let maybe_commit t ~inst round =
  if (not round.committed) && round.acks >= Array.length t.others then begin
    round.committed <- true;
    Hashtbl.remove t.inflight (Wire.value_key round.v);
    let executed = Replica_core.learn t.core ~inst round.v in
    broadcast_others t (Wire.Tp_commit { inst; v = round.v });
    List.iter (reply_if_mine t) executed;
    if Array.length t.others = 0 then Hashtbl.remove t.rounds inst
  end

let coordinate t v =
  let key = Wire.value_key v in
  Hashtbl.replace t.my_keys key ();
  match Replica_core.cached_result t.core ~client:(fst key) ~req_id:(snd key) with
  | Some result ->
    Hashtbl.remove t.my_keys key;
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    if not (Hashtbl.mem t.inflight key) then begin
      let inst = t.next_inst in
      t.next_inst <- t.next_inst + 1;
      Hashtbl.replace t.inflight key inst;
      let round = { v; acks = 0; commit_acks = 0; committed = false } in
      Hashtbl.replace t.rounds inst round;
      broadcast_others t (Wire.Tp_prepare { inst; v });
      maybe_commit t ~inst round
    end

(* A read may be answered locally unless this replica holds a
   prepared-but-uncommitted update to the same datum — the paper's "not
   received in the gap between two phases" (replicas lock their local
   copy of the datum, so the lock is per key). *)
let read_is_locked t cmd =
  (* [keys_of], not [key_of]: a [Range] is locked if {e any} key in its
     span has a prepared write pending, not just its low endpoint. *)
  match Command.keys_of cmd with
  | [] -> false
  | keys ->
    Hashtbl.fold
      (fun _ (v : Wire.value) locked ->
        locked
        ||
        match Command.key_of v.Wire.cmd with
        | Some k -> List.mem k keys
        | None -> false)
      t.prepared false

let handle_request t ~src ~req_id ~cmd =
  let v = { Wire.client = src; req_id; cmd } in
  if t.self = t.cfg.coordinator then coordinate t v
  else if t.cfg.local_reads && Command.is_read cmd && not (read_is_locked t cmd)
  then begin
    t.n_local_reads <- t.n_local_reads + 1;
    match Replica_core.local_read t.core cmd with
    | Some result -> send t src (Wire.Reply { req_id; result })
    | None -> ()
  end
  else
    (* 2PC has no leader change: hand the command to the coordinator. *)
    send t t.cfg.coordinator (Wire.Forward { v })

let handle t ~src msg =
  match msg with
  | Wire.Request { req_id; cmd; relaxed_read = _ } -> handle_request t ~src ~req_id ~cmd
  | Wire.Forward { v } ->
    if t.self = t.cfg.coordinator then coordinate t v
    else send t t.cfg.coordinator (Wire.Forward { v })
  | Wire.Tp_prepare { inst; v } ->
    Hashtbl.replace t.prepared inst v;
    send t src (Wire.Tp_ack { inst })
  | Wire.Tp_ack { inst } ->
    (match Hashtbl.find_opt t.rounds inst with
     | Some round ->
       round.acks <- round.acks + 1;
       maybe_commit t ~inst round
     | None -> ())
  | Wire.Tp_commit { inst; v } ->
    Hashtbl.remove t.prepared inst;
    learn_value t ~inst v;
    send t src (Wire.Tp_commit_ack { inst })
  | Wire.Tp_commit_ack { inst } ->
    (match Hashtbl.find_opt t.rounds inst with
     | Some round ->
       round.commit_acks <- round.commit_acks + 1;
       if round.commit_acks >= Array.length t.others then
         Hashtbl.remove t.rounds inst
     | None -> ())
  | Wire.Tp_rollback { inst } -> Hashtbl.remove t.prepared inst
  | Wire.Reply _ | Wire.Op_prepare_request _ | Wire.Op_prepare_response _
  | Wire.Op_abandon _ | Wire.Op_accept_request _ | Wire.Op_learn _
  | Wire.Pu_prepare _ | Wire.Pu_promise _ | Wire.Pu_reject _ | Wire.Pu_accept _
  | Wire.Pu_accepted _ | Wire.Pu_nack _ | Wire.Pu_learn _ | Wire.Pu_read _
  | Wire.Pu_read_reply _ | Wire.Ls_req _ | Wire.Ls_reply _ | Wire.Mp_prepare _
  | Wire.Mp_promise _ | Wire.Mp_reject _ | Wire.Mp_accept _ | Wire.Mp_learn _ | Wire.Op_accept_batch _ | Wire.Op_learn_batch _ | Wire.Mp_accept_batch _ | Wire.Mp_learn_batch _ | Wire.Bp_prepare _ | Wire.Bp_promise _ | Wire.Bp_reject _ | Wire.Bp_accept _ | Wire.Bp_learn _ | Wire.Mn_accept _ | Wire.Mn_learn _ | Wire.Cp_accept _ | Wire.Cp_accepted _ | Wire.Cp_learn _ | Wire.Cp_state _ | Wire.Tp_nack _ | Wire.Le_renew _ | Wire.Le_grant _ ->
    ()

let create ~env ~config =
  let self = env.Node_env.id in
  {
    env;
    cfg = config;
    self;
    core = Replica_core.create ~replica:self;
    others = Array.of_list (List.filter (fun id -> id <> self) (Array.to_list config.replicas));
    next_inst = 0;
    rounds = Hashtbl.create 256;
    inflight = Hashtbl.create 256;
    my_keys = Hashtbl.create 64;
    prepared = Hashtbl.create 64;
    n_local_reads = 0;
  }

let replica_core t = t.core
let is_coordinator t = t.self = t.cfg.coordinator
let prepared_count t = Hashtbl.length t.prepared
let local_read_count t = t.n_local_reads

(* ----- Shard participant (2PC over per-shard consensus) ----------------- *)

(* In the sharded deployment the coordinator is a router node and each
   participant is one shard's consensus group, entered through a
   replica node. The participant below does not keep any durable state
   of its own: a [Tp_prepare]/[Tp_commit] is turned into a [Prep]/[Fin]
   command submitted to the local consensus as a self-request, so the
   lock and the staged write live in the shard's replicated log. The
   participant merely correlates the consensus [Reply] back to the
   coordinator's message — losing it (crash) is harmless because the
   coordinator retries and [Prep]/[Fin] are idempotent in the store. *)
module Participant = struct
  type phase = P_prep | P_fin
  type tstate = {
    mutable coord : int;
    mutable prep : [ `Unseen | `Inflight of int | `Decided of bool ];
    mutable fin : [ `Unseen | `Inflight of int | `Done ];
  }

  type p = {
    env : Wire.t Node_env.t;
    mutable next_req : int;
    pending : (int, int * phase) Hashtbl.t; (* own req_id -> txn, phase *)
    txns : (int, tstate) Hashtbl.t;
    mutable issued : (int * Command.t) list;
    mutable n_prepares : int;
    mutable n_finishes : int;
  }

  let create ~env =
    {
      env;
      next_req = 0;
      pending = Hashtbl.create 64;
      txns = Hashtbl.create 64;
      issued = [];
      n_prepares = 0;
      n_finishes = 0;
    }

  let tstate t ~txn ~coord =
    match Hashtbl.find_opt t.txns txn with
    | Some ts ->
      ts.coord <- coord;
      ts
    | None ->
      let ts = { coord; prep = `Unseen; fin = `Unseen } in
      Hashtbl.add t.txns txn ts;
      ts

  let self_request t ~req_id cmd =
    t.env.Node_env.send ~dst:t.env.Node_env.id
      (Wire.Request { req_id; cmd; relaxed_read = false })

  let submit t ~txn ~phase cmd =
    let req_id = t.next_req in
    t.next_req <- t.next_req + 1;
    t.issued <- (req_id, cmd) :: t.issued;
    Hashtbl.replace t.pending req_id (txn, phase);
    self_request t ~req_id cmd;
    req_id

  let reply t ~dst msg = t.env.Node_env.send ~dst msg

  (* [handle t ~src msg] is [true] when the participant consumed the
     message; the caller passes everything else to the consensus core. *)
  let handle t ~src msg =
    match msg with
    | Wire.Tp_prepare { inst = txn; v } ->
      let ts = tstate t ~txn ~coord:src in
      (match ts.prep with
      | `Unseen -> (
        match v.Wire.cmd with
        | Command.Prep _ as cmd ->
          t.n_prepares <- t.n_prepares + 1;
          ts.prep <- `Inflight (submit t ~txn ~phase:P_prep cmd)
        | _ -> () (* malformed prepare: refuse to propose it *))
      | `Inflight req_id ->
        (* Coordinator retry while consensus is still deciding: re-send
           the same self-request. Protocols dedup on (client, req_id),
           and the duplicate covers a submission that died with a
           crashed incarnation. *)
        self_request t ~req_id v.Wire.cmd
      | `Decided ok ->
        reply t ~dst:src
          (if ok then Wire.Tp_ack { inst = txn } else Wire.Tp_nack { inst = txn }));
      true
    | Wire.Tp_commit { inst = txn; v } ->
      let ts = tstate t ~txn ~coord:src in
      (match ts.fin with
      | `Unseen -> (
        match v.Wire.cmd with
        | Command.Fin _ as cmd ->
          t.n_finishes <- t.n_finishes + 1;
          ts.fin <- `Inflight (submit t ~txn ~phase:P_fin cmd)
        | _ -> ())
      | `Inflight req_id -> self_request t ~req_id v.Wire.cmd
      | `Done -> reply t ~dst:src (Wire.Tp_commit_ack { inst = txn }));
      true
    | Wire.Reply { req_id; result } -> (
      match Hashtbl.find_opt t.pending req_id with
      | None -> false (* not ours; an embedded client may want it *)
      | Some (txn, phase) ->
        Hashtbl.remove t.pending req_id;
        (match Hashtbl.find_opt t.txns txn with
        | None -> ()
        | Some ts -> (
          match phase with
          | P_prep ->
            let ok = match result with Command.Swapped b -> b | _ -> false in
            ts.prep <- `Decided ok;
            reply t ~dst:ts.coord
              (if ok then Wire.Tp_ack { inst = txn }
               else Wire.Tp_nack { inst = txn })
          | P_fin ->
            ts.fin <- `Done;
            reply t ~dst:ts.coord (Wire.Tp_commit_ack { inst = txn })));
        true)
    | _ -> false

  let issued t = List.rev t.issued
  let prepares t = t.n_prepares
  let finishes t = t.n_finishes
  let inflight t = Hashtbl.length t.pending
end

(* Structural fingerprint for the explorer's visited-state table;
   hashtables in sorted key order (see {!Onepaxos.digest}). *)
let digest t =
  let tbl_list tbl =
    Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [] |> List.sort compare
  in
  let rounds =
    Hashtbl.fold
      (fun i r l -> (i, r.v, r.acks, r.commit_acks, r.committed) :: l)
      t.rounds []
    |> List.sort compare
  in
  Hashtbl.hash_param 1000 1000
    ( Replica_core.digest t.core, t.next_inst, rounds, tbl_list t.inflight,
      tbl_list t.my_keys, tbl_list t.prepared )

module Node_env = Ci_engine.Node_env
module Sim_time = Ci_engine.Sim_time
module Command = Ci_rsm.Command

type config = {
  replicas : int array;
  initial_leader : int;
  initial_acceptor : int;
  acceptor_timeout : Sim_time.t;
  prepare_timeout : Sim_time.t;
  check_period : Sim_time.t;
  pu_timeout : Sim_time.t;
  relaxed_reads : bool;
  max_batch : int;
  batch_delay : Sim_time.t;
  window : int;
  lease : Sim_time.t;
  lease_skew : Sim_time.t;
  unsafe_stale_adoption : bool;
      (* Test-only: re-introduces the pre-fix stale-adoption split-brain
         (leadership gates removed from adoption, retry and takeover
         cancellation) so the model checker can demonstrate it finds
         this bug class. Never enable outside tests. *)
}

let default_config ~replicas =
  if Array.length replicas < 2 then
    invalid_arg "Onepaxos.default_config: need at least two replicas";
  {
    replicas;
    initial_leader = replicas.(0);
    initial_acceptor = replicas.(1);
    acceptor_timeout = Sim_time.us 800;
    prepare_timeout = Sim_time.us 800;
    check_period = Sim_time.us 200;
    pu_timeout = Sim_time.us 400;
    relaxed_reads = false;
    max_batch = 1;
    batch_delay = 0;
    window = 0;
    lease = 0;
    lease_skew = 0;
    unsafe_stale_adoption = false;
  }

type ls_op = { mutable replies : int; k : unit -> unit }

type t = {
  env : Wire.t Node_env.t;
  cfg : config;
  self : int;
  core : Replica_core.t;
  mutable pu : Paxos_utility.t option; (* set in [create], always Some *)
  (* Leader / proposer state. *)
  mutable iam_leader : bool;
  mutable aa : int option;
  mutable cur_leader : int option;
  mutable my_pn : Pn.t;
  mutable pn_round : int;
  mutable expect_fresh : bool;
  mutable ap_covered : bool;
      (* Whether every proposal the current acceptor may have accepted is
         contained in [proposed]: true once we adopted it (its ap was
         registered) or once we installed it fresh ourselves. Only then
         is replacing it safe — otherwise accepted values whose learns
         are still in flight could be overwritten. *)
  mutable becoming : bool;
  mutable changing_acceptor : bool;
  mutable pending_prepare : Pn.t option;
  mutable prepare_deadline : Sim_time.t option;
  proposed : (int, Wire.value) Hashtbl.t;
  inflight : (int * int, int) Hashtbl.t; (* value key -> instance *)
  mutable next_inst : int;
  pending : Wire.value Queue.t;
  outstanding : (int, Sim_time.t) Hashtbl.t; (* instance -> accept sent at *)
  my_keys : (int * int, unit) Hashtbl.t;
  (* Batching / pipelining layer (inactive at max_batch = 1, window = 0:
     every path below then reduces to the paper's one-value-per-message
     protocol, byte for byte). *)
  bat_buf : Wire.value Queue.t; (* commands waiting for the next batch *)
  bat_keys : (int * int, unit) Hashtbl.t; (* dedup for [bat_buf] *)
  mutable bat_inflight : int; (* batches proposed, not yet fully decided *)
  bat_remaining : (int, int ref) Hashtbl.t; (* batch base -> undecided slots *)
  slot_batch : (int, int) Hashtbl.t; (* instance -> its batch base *)
  mutable bat_timer : Node_env.timer option;
  mutable bat_overdue : bool; (* delay expired with the window full *)
  (* Acceptor state (Appendix A: hpn, ap, IamFresh). *)
  mutable hpn : Pn.t;
  mutable iam_fresh : bool;
  acc_ap : (int, Pn.t * Wire.value) Hashtbl.t;
  mutable acc_retired : bool;
      (* The configuration log moved the acceptor role away from this
         node. Its promise state is frozen history: answering prepares
         or minting new acceptances now could decide an instance behind
         the current acceptor's back — the leader that relocated the
         role vouched for this node's accepted set as of the handoff,
         so anything accepted after it is a split-brain. Reset when an
         [Acceptor_change] installs this node again. *)
  (* Learner catch-up. *)
  mutable ls_token : int;
  ls_ops : (int, ls_op) Hashtbl.t;
  (* Leader lease (inactive at lease = 0). *)
  mutable grant_holder : Pn.t;
      (* Last renewal granted: owner is the leaseholder's node id, round
         its configuration-log view ([next_cseq]) at renewal time. *)
  mutable grant_until : Sim_time.t; (* our clock; promise active below this *)
  grants : (int, Sim_time.t) Hashtbl.t; (* leader: src -> expiry, our clock *)
  mutable last_renew : Sim_time.t;
  mutable n_lease_reads : int;
  mutable read_floor : int;
      (* Highest instance whose write may have been acked by someone
         other than this leader in this term (adopted from a previous
         term, or forwarded by a follower that replies to its own client
         on local execution). Local reads wait for the executed prefix
         to pass it; the leader's own un-acked in-flight writes need no
         such wait — a concurrent read may linearize before them. *)
  mutable bat_has_fwd : bool; (* a forwarded value sits in [bat_buf] *)
  (* Counters. *)
  mutable n_leader_changes : int;
  mutable n_acceptor_changes : int;
}

let majority t = (Array.length t.cfg.replicas / 2) + 1
let send t dst msg = t.env.Node_env.send ~dst msg
let now t = t.env.Node_env.now ()

let pu t =
  match t.pu with Some p -> p | None -> assert false

let fresh_pn t =
  t.pn_round <- t.pn_round + 1;
  Pn.make ~round:t.pn_round ~owner:t.self

(* ----- leader lease ------------------------------------------------------ *)

(* Same clock-skew-free scheme as Multi-Paxos (see multipaxos.mli), with
   one 1Paxos-specific twist: leadership here flows through the
   PaxosUtility configuration log, so a grant is the promise not to help
   {e commit} a [Leader_change] naming a different owner — enforced by
   silently vetoing such [Pu_accept]s while the grant is active, and by
   refusing to grant a renewer we may already have helped depose at or
   beyond its own configuration view ([helped_elect_other]). Any quorum
   that could commit a deposition then intersects the leader's fresh
   grant set, so the leader's local reads stay linearizable. *)

let lease_on t = t.cfg.lease > 0

let lease_valid t ~at =
  Hashtbl.fold (fun _ exp n -> if exp > at then n + 1 else n) t.grants 0
  >= majority t

let grant_active t ~at ~owner =
  lease_on t && at < t.grant_until && owner <> t.grant_holder.Pn.owner

(* Drop a [Pu_accept] that would help elect a different owner while our
   grant is active; the proposer's backoff retries after expiry. *)
let veto_pu t msg =
  match msg with
  | Wire.Pu_accept { entry = Wire.Leader_change { leader; _ }; _ } ->
    grant_active t ~at:(now t) ~owner:leader
  | _ -> false

let on_renew t ~src ~pn ~sent =
  let at = now t in
  if
    (not (grant_active t ~at ~owner:pn.Pn.owner))
    && not
         (Paxos_utility.helped_elect_other (pu t) ~from_cseq:pn.Pn.round
            ~leader:pn.Pn.owner)
  then begin
    t.grant_holder <- pn;
    t.grant_until <- max t.grant_until (at + t.cfg.lease);
    send t src (Wire.Le_grant { pn; sent })
  end

let on_grant t ~src ~pn ~sent =
  if t.iam_leader && pn.Pn.owner = t.self then
    Hashtbl.replace t.grants src (sent + t.cfg.lease - t.cfg.lease_skew)

(* Renewals ride the failure-detector tick ([scan]) rather than their own
   timer: piggybacking on traffic that already exists keeps lease = 0
   byte-identical and adds no timer churn. *)
let maybe_renew t =
  if lease_on t && t.iam_leader then begin
    let at = now t in
    if at - t.last_renew >= max 1 (t.cfg.lease / 3) then begin
      t.last_renew <- at;
      let pn =
        Pn.make ~round:(Paxos_utility.next_cseq (pu t)) ~owner:t.self
      in
      Array.iter
        (fun dst -> send t dst (Wire.Le_renew { pn; sent = at }))
        t.cfg.replicas
    end
  end

let lease_read t cmd =
  if
    lease_on t && t.iam_leader
    (* Local state reflects every write any client may have seen acked:
       our own acks happen on execution (automatic), and [read_floor]
       covers instances a previous term or a forwarding follower could
       have acked. The batch buffer must be empty because buffered
       forwarded values have no instance yet (see [flush_batch]). *)
    && Replica_core.first_gap t.core > t.read_floor
    && Queue.is_empty t.bat_buf
    && lease_valid t ~at:(now t)
  then Replica_core.local_read t.core cmd
  else None

(* ----- proposing client values (failure-free path) --------------------- *)

let reply_if_mine t (ex : Replica_core.executed) =
  let key = Wire.value_key ex.v in
  if Hashtbl.mem t.my_keys key then begin
    Hashtbl.remove t.my_keys key;
    send t ex.v.Wire.client (Wire.Reply { req_id = ex.v.Wire.req_id; result = ex.result })
  end

let batching_on t = t.cfg.max_batch > 1 || t.cfg.window > 0
let window_open t = t.cfg.window <= 0 || t.bat_inflight < t.cfg.window

let cancel_batch_timer t =
  match t.bat_timer with
  | Some tm ->
    Node_env.cancel_timer tm;
    t.bat_timer <- None
  | None -> ()

let rec learn_value t ~inst v =
  Hashtbl.remove t.outstanding inst;
  Hashtbl.remove t.inflight (Wire.value_key v);
  let executed = Replica_core.learn t.core ~inst v in
  List.iter (reply_if_mine t) executed;
  batch_decided t ~inst

(* A slot of one of our batches decided: when its whole batch is in,
   release the pipeline window slot and flush whatever queued up. *)
and batch_decided t ~inst =
  match Hashtbl.find_opt t.slot_batch inst with
  | None -> ()
  | Some base ->
    Hashtbl.remove t.slot_batch inst;
    (match Hashtbl.find_opt t.bat_remaining base with
     | Some r ->
       decr r;
       if !r <= 0 then begin
         Hashtbl.remove t.bat_remaining base;
         t.bat_inflight <- max 0 (t.bat_inflight - 1);
         try_flush t
       end
     | None -> ())

(* Flush policy: full batches go out whenever the window allows; a
   partial batch goes out once the batch delay has expired (or
   immediately with no delay configured), otherwise the delay timer is
   armed to bound the latency cost of waiting for company. *)
and try_flush t =
  if t.iam_leader && t.aa <> None then begin
    while window_open t && Queue.length t.bat_buf >= t.cfg.max_batch do
      flush_batch t t.cfg.max_batch
    done;
    if Queue.is_empty t.bat_buf then begin
      t.bat_overdue <- false;
      cancel_batch_timer t
    end
    else if window_open t then begin
      if t.bat_overdue || t.cfg.batch_delay <= 0 then begin
        t.bat_overdue <- false;
        cancel_batch_timer t;
        flush_batch t (Queue.length t.bat_buf)
      end
      else if t.bat_timer = None then
        t.bat_timer <-
          Some
            (t.env.Node_env.after_cancel ~delay:t.cfg.batch_delay (fun () ->
                 t.bat_timer <- None;
                 t.bat_overdue <- true;
                 try_flush t))
    end
  end

and flush_batch t k =
  let base = t.next_inst in
  t.next_inst <- base + k;
  let vs = Array.make k (Queue.peek t.bat_buf) in
  for i = 0 to k - 1 do
    vs.(i) <- Queue.pop t.bat_buf
  done;
  Array.iteri
    (fun i v ->
      let inst = base + i in
      Hashtbl.remove t.bat_keys (Wire.value_key v);
      Hashtbl.replace t.proposed inst v;
      Hashtbl.replace t.inflight (Wire.value_key v) inst;
      Hashtbl.replace t.outstanding inst (now t);
      Hashtbl.replace t.slot_batch inst base)
    vs;
  Hashtbl.replace t.bat_remaining base (ref k);
  t.bat_inflight <- t.bat_inflight + 1;
  if t.bat_has_fwd then begin
    (* A forwarded value may be in this batch: its follower can ack it
       as soon as it decides, so local reads wait for the whole range. *)
    t.read_floor <- max t.read_floor (base + k - 1);
    if Queue.is_empty t.bat_buf then t.bat_has_fwd <- false
  end;
  match t.aa with
  | Some a -> send t a (Wire.Op_accept_batch { base; pn = t.my_pn; vs })
  | None -> assert false

and propose_value t v =
  let key = Wire.value_key v in
  Hashtbl.replace t.my_keys key ();
  match Replica_core.cached_result t.core ~client:(fst key) ~req_id:(snd key) with
  | Some result ->
    Hashtbl.remove t.my_keys key;
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    if batching_on t then begin
      if not (Hashtbl.mem t.inflight key || Hashtbl.mem t.bat_keys key)
      then begin
        Hashtbl.replace t.bat_keys key ();
        Queue.push v t.bat_buf;
        try_flush t
      end
    end
    else if not (Hashtbl.mem t.inflight key) then begin
      let inst = t.next_inst in
      t.next_inst <- t.next_inst + 1;
      Hashtbl.replace t.proposed inst v;
      Hashtbl.replace t.inflight key inst;
      Hashtbl.replace t.outstanding inst (now t);
      match t.aa with
      | Some a -> send t a (Wire.Op_accept_request { inst; pn = t.my_pn; v })
      | None -> assert false
    end

let drain_pending t =
  if t.iam_leader && t.aa <> None then begin
    while not (Queue.is_empty t.pending) do
      propose_value t (Queue.pop t.pending)
    done;
    if batching_on t then try_flush t
  end

(* Re-issue accepts for every registered-but-undecided proposal (after
   adopting an acceptor). Instances are re-proposed with their original
   values — Lemma 2a's requirement. *)
let re_propose_uncommitted t =
  let pairs =
    Hashtbl.fold (fun inst v acc -> (inst, v) :: acc) t.proposed []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (inst, v) ->
      if not (Replica_core.is_decided t.core ~inst) then begin
        Hashtbl.replace t.outstanding inst (now t);
        Hashtbl.replace t.inflight (Wire.value_key v) inst;
        match t.aa with
        | Some a -> send t a (Wire.Op_accept_request { inst; pn = t.my_pn; v })
        | None -> ()
      end)
    pairs

let bump_next_inst t =
  let high =
    Hashtbl.fold (fun inst _ acc -> max inst acc) t.proposed (-1)
  in
  t.next_inst <- max t.next_inst (max (high + 1) (Replica_core.first_gap t.core))

(* ----- leadership machinery -------------------------------------------- *)

(* Ask every replica for its decided suffix; continue once a majority
   (including ourselves) answered. A fresh leader runs this before
   proposing so it never fills an instance some learner already knows
   decided (hardening beyond the paper's pseudo-code; see DESIGN.md). *)
let learner_sync t k =
  let token = t.ls_token in
  t.ls_token <- t.ls_token + 1;
  Hashtbl.replace t.ls_ops token { replies = 0; k };
  let from_ = Replica_core.first_gap t.core in
  Array.iter
    (fun dst -> send t dst (Wire.Ls_req { token; from_ }))
    t.cfg.replicas

let adopt_acceptor t =
  match t.aa with
  | None -> ()
  | Some a ->
    let pn = fresh_pn t in
    t.pending_prepare <- Some pn;
    t.prepare_deadline <- Some (now t + t.cfg.prepare_timeout);
    t.becoming <- true;
    send t a (Wire.Op_prepare_request { pn; must_be_fresh = t.expect_fresh })

let forward_pending t =
  match t.cur_leader with
  | Some l when l <> t.self ->
    while not (Queue.is_empty t.pending) do
      send t l (Wire.Forward { v = Queue.pop t.pending })
    done
  | Some _ | None -> ()

let step_down t =
  if t.iam_leader then t.env.Node_env.note_phase ~phase:"1paxos:step-down";
  t.iam_leader <- false;
  Hashtbl.reset t.grants;
  t.becoming <- false;
  t.pending_prepare <- None;
  t.prepare_deadline <- None;
  (* Commands still buffered for a batch go back to the pending queue
     so they reach the winning leader with everything else. *)
  while not (Queue.is_empty t.bat_buf) do
    let v = Queue.pop t.bat_buf in
    Hashtbl.remove t.bat_keys (Wire.value_key v);
    Queue.push v t.pending
  done;
  t.bat_overdue <- false;
  cancel_batch_timer t;
  forward_pending t

(* Upon AcceptorFailure (Appendix A, lines 1..13): verify global
   leadership, select a backup acceptor on another node, move the
   uncommitted proposals through PaxosUtility, then re-adopt. Requires
   [ap_covered]: a leader that has not adopted the acceptor (and did not
   install it itself) does not know its accepted proposals and must wait
   for it instead — this is exactly the situation in which the paper
   says 1Paxos blocks until the leader or the acceptor recovers. *)
let rec acceptor_failure t =
  if t.ap_covered && not (t.changing_acceptor || Paxos_utility.proposing (pu t))
  then begin
    t.changing_acceptor <- true;
    Paxos_utility.sync (pu t) (fun () ->
        if Paxos_utility.current_leader (pu t) <> Some t.self then begin
          t.changing_acceptor <- false;
          step_down t
        end
        else if Paxos_utility.proposing (pu t) || not t.ap_covered then
          t.changing_acceptor <- false
        else begin
          let next_acceptor =
            let r = t.cfg.replicas in
            let n = Array.length r in
            let cur =
              match t.aa with
              | Some a -> (match Array.find_index (fun id -> id = a) r with
                           | Some i -> i
                           | None -> 0)
              | None -> 0
            in
            let rec probe step =
              let cand = r.((cur + step) mod n) in
              if cand <> t.self && Some cand <> t.aa then cand
              else if step >= n then
                (* Degenerate two-node case: reinstall the same node
                   (it resets to fresh on installation). *)
                (if r.(0) <> t.self then r.(0) else r.(1 mod n))
              else probe (step + 1)
            in
            probe 1
          in
          let carried =
            Hashtbl.fold
              (fun inst v acc ->
                if Replica_core.is_decided t.core ~inst then acc
                else (inst, v) :: acc)
              t.proposed []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          t.iam_leader <- false;
          Paxos_utility.propose (pu t)
            (Wire.Acceptor_change { acceptor = next_acceptor; carried })
            (fun ~ok ->
              t.changing_acceptor <- false;
              if ok then begin
                (* on_entry set [aa] and [expect_fresh]. *)
                adopt_acceptor t
              end
              else re_evaluate t)
        end)
  end

(* The propose() takeover path (Appendix A, lines 18..35): announce
   leadership through PaxosUtility assuming the current acceptor, then
   adopt it. *)
and become_leader t =
  if not (t.iam_leader || t.becoming || t.changing_acceptor) then begin
    t.becoming <- true;
    Paxos_utility.sync (pu t) (fun () ->
        match Paxos_utility.current_leader (pu t) with
        | Some l when l = t.self ->
          (* Already the global leader (e.g. mid acceptor change). *)
          learner_sync t (fun () ->
              bump_next_inst t;
              if t.aa = Some t.self then begin
                t.becoming <- false;
                register_own_acceptor_state t;
                t.ap_covered <- true;
                acceptor_failure t
              end
              else adopt_acceptor t)
        | Some _ | None ->
          if Paxos_utility.proposing (pu t) then t.becoming <- false
          else begin
            match Paxos_utility.current_acceptor (pu t) with
            | None -> t.becoming <- false
            | Some a ->
              Paxos_utility.propose (pu t)
                (Wire.Leader_change { leader = t.self; acceptor = a })
                (fun ~ok ->
                  if ok then
                    learner_sync t (fun () ->
                        bump_next_inst t;
                        if t.aa = Some t.self then begin
                          (* We are both leader and acceptor: register our
                             own accepted proposals and relocate the
                             acceptor role to another node. *)
                          t.becoming <- false;
                          register_own_acceptor_state t;
                          t.ap_covered <- true;
                          acceptor_failure t
                        end
                        else adopt_acceptor t)
                  else begin
                    t.becoming <- false;
                    re_evaluate t
                  end)
          end)
  end

(* After losing a PaxosUtility slot: adopt whatever configuration won
   and either retry or hand our queue to the winner. *)
and re_evaluate t =
  Paxos_utility.sync (pu t) (fun () ->
      match Paxos_utility.current_leader (pu t) with
      | Some l when l = t.self ->
        if not (t.iam_leader || t.becoming) then become_leader t
      | Some _ -> step_down t
      | None -> ())

and register_own_acceptor_state t =
  Hashtbl.iter
    (fun inst (_, v) ->
      if not (Replica_core.is_decided t.core ~inst) then
        Hashtbl.replace t.proposed inst v)
    t.acc_ap

(* ----- client entry ----------------------------------------------------- *)

let handle_value t v =
  match
    Replica_core.cached_result t.core ~client:v.Wire.client ~req_id:v.Wire.req_id
  with
  | Some result ->
    send t v.Wire.client (Wire.Reply { req_id = v.Wire.req_id; result })
  | None ->
    Hashtbl.replace t.my_keys (Wire.value_key v) ();
    if t.iam_leader then propose_value t v
    else begin
      Queue.push v t.pending;
      (* A client only contacts a non-leader when it suspects the
         leader: try to take over (Section 5.3). *)
      become_leader t
    end

let handle_request t ~src ~req_id ~cmd ~relaxed_read =
  if relaxed_read && t.cfg.relaxed_reads && Command.is_read cmd then
    match Replica_core.local_read t.core cmd with
    | Some result -> send t src (Wire.Reply { req_id; result })
    | None -> ()
  else if Command.is_read cmd then begin
    match lease_read t cmd with
    | Some result ->
      t.n_lease_reads <- t.n_lease_reads + 1;
      send t src (Wire.Reply { req_id; result })
    | None -> handle_value t { Wire.client = src; req_id; cmd }
  end
  else handle_value t { Wire.client = src; req_id; cmd }

(* ----- acceptor role (Appendix A, lines 45..61) ------------------------- *)

let on_prepare_request t ~src ~pn ~must_be_fresh =
  if t.acc_retired && not t.cfg.unsafe_stale_adoption then
    (* Tenure over: abandon so the knocker syncs the configuration log
       and finds the acceptor's new home. *)
    send t src (Wire.Op_abandon { hpn = t.hpn })
  else if Pn.(pn > t.hpn) then begin
    if t.iam_fresh <> must_be_fresh then
      (* Freshness mismatch: stay silent; the proposer times out and
         replaces this acceptor, so lost promises can never be relied
         upon. *)
      ()
    else begin
      t.iam_fresh <- false;
      t.hpn <- pn;
      let accepted =
        Hashtbl.fold (fun inst slot acc -> (inst, slot) :: acc) t.acc_ap []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      send t src (Wire.Op_prepare_response { pn; accepted })
    end
  end
  else send t src (Wire.Op_abandon { hpn = t.hpn })

let on_accept_request t ~src ~inst ~pn ~v =
  if
    (t.acc_retired && not t.cfg.unsafe_stale_adoption)
    || not (Pn.equal pn t.hpn)
  then send t src (Wire.Op_abandon { hpn = t.hpn })
  else
    match Hashtbl.find_opt t.acc_ap inst with
    | Some (_, v0) ->
      (* Already accepted: re-issue the learn (covers retried
         proposals after a lost-looking learn). *)
      Array.iter (fun dst -> send t dst (Wire.Op_learn { inst; v = v0 })) t.cfg.replicas
    | None ->
      Hashtbl.replace t.acc_ap inst (pn, v);
      Array.iter (fun dst -> send t dst (Wire.Op_learn { inst; v })) t.cfg.replicas

(* Batched accepts: one proposal-number check covers the whole range;
   per slot the acceptor either accepts the leader's value or keeps an
   earlier acceptance (whose learn may have been lost), substituting it
   in the outgoing batch — the per-slot logic of [on_accept_request],
   amortized over one message each way. *)
let on_accept_batch t ~src ~base ~pn ~vs =
  if
    (t.acc_retired && not t.cfg.unsafe_stale_adoption)
    || not (Pn.equal pn t.hpn)
  then send t src (Wire.Op_abandon { hpn = t.hpn })
  else begin
    let out =
      Array.mapi
        (fun i v ->
          let inst = base + i in
          match Hashtbl.find_opt t.acc_ap inst with
          | Some (_, v0) -> v0
          | None ->
            Hashtbl.replace t.acc_ap inst (pn, v);
            v)
        vs
    in
    Array.iter
      (fun dst -> send t dst (Wire.Op_learn_batch { base; vs = out }))
      t.cfg.replicas
  end

let on_learn_batch t ~base ~vs =
  Array.iteri (fun i v -> learn_value t ~inst:(base + i) v) vs

(* ----- leader role ------------------------------------------------------ *)

let on_prepare_response t ~src ~pn ~accepted =
  let expected = match t.pending_prepare with Some p -> Pn.equal p pn | None -> false in
  (* Leadership flows from the configuration log alone: a prepare
     response may only promote the node the last Leader_change named.
     Without this gate a stale takeover attempt (its knocking kept alive
     by [scan]) can adopt a freshly installed acceptor and produce two
     concurrent leaders — each with its own acceptor — proposing
     different values at the same instance. *)
  if
    (not t.iam_leader)
    && (t.cfg.unsafe_stale_adoption || t.cur_leader = Some t.self)
    && Some src = t.aa && expected
  then begin
    t.env.Node_env.note_phase ~phase:"1paxos:adopted-acceptor";
    t.iam_leader <- true;
    t.becoming <- false;
    t.pending_prepare <- None;
    t.prepare_deadline <- None;
    t.expect_fresh <- false;
    t.ap_covered <- true;
    t.my_pn <- pn;
    (* registerProposals: the acceptor's accepted values dominate ours
       for their instances (Lemma 2b). *)
    List.iter
      (fun (inst, (_, v)) -> Hashtbl.replace t.proposed inst v)
      accepted;
    bump_next_inst t;
    (* Anything adopted may already have been acked by the previous
       term: no local reads until our store reflects all of it. *)
    t.read_floor <- max t.read_floor (t.next_inst - 1);
    re_propose_uncommitted t;
    drain_pending t
  end

let on_abandon t ~src ~hpn =
  if Some src = t.aa && (t.iam_leader || t.becoming) then begin
    t.pn_round <- max t.pn_round hpn.Pn.round;
    t.iam_leader <- false;
    t.becoming <- false;
    t.pending_prepare <- None;
    t.prepare_deadline <- None;
    (* Either a rival leader adopted our acceptor, our number is simply
       too low, or the acceptor lost its state: let the configuration
       log arbitrate. *)
    Paxos_utility.sync (pu t) (fun () ->
        match Paxos_utility.current_leader (pu t) with
        | Some l when l = t.self ->
          if t.ap_covered then
            (* We already know everything it accepted (we adopted it
               before): replace it — this is how the last leader fixes a
               silently reset acceptor. *)
            acceptor_failure t
          else
            (* Not adopted yet: retry with a number above [hpn]. *)
            adopt_acceptor t
        | Some _ -> step_down t
        | None -> ())
  end

(* ----- failure detector -------------------------------------------------- *)

let scan t =
  maybe_renew t;
  (if t.iam_leader then begin
     let oldest =
       Hashtbl.fold (fun _ at acc -> min at acc) t.outstanding max_int
     in
     if oldest <> max_int && now t - oldest > t.cfg.acceptor_timeout then
       acceptor_failure t
   end);
  match t.prepare_deadline with
  | Some d when now t > d ->
    t.pending_prepare <- None;
    t.prepare_deadline <- None;
    t.becoming <- false;
    if (not t.cfg.unsafe_stale_adoption) && t.cur_leader <> Some t.self then
      (* Leadership moved on while we were knocking: abandon the
         attempt and hand our queue to the winner. Retrying here would
         keep a rival adoption loop alive forever. *)
      forward_pending t
    else if t.ap_covered then
      (* The acceptor we installed (or previously adopted) is not
         answering: replace it. *)
      acceptor_failure t
    else
      (* Inherited acceptor unresponsive and its accepted proposals
         unknown: 1Paxos must wait for it (the paper's
         leader-and-acceptor-both-slow stall). Keep knocking. *)
      adopt_acceptor t
  | Some _ | None -> ()

let rec fd_loop t =
  t.env.Node_env.after ~delay:t.cfg.check_period (fun () ->
      scan t;
      fd_loop t)

(* ----- learner catch-up -------------------------------------------------- *)

let on_ls_req t ~src ~token ~from_ =
  send t src (Wire.Ls_reply { token; decisions = Replica_core.decisions_from t.core ~from_ })

let on_ls_reply t ~token ~decisions =
  List.iter (fun (inst, v) -> learn_value t ~inst v) decisions;
  match Hashtbl.find_opt t.ls_ops token with
  | Some op ->
    op.replies <- op.replies + 1;
    if op.replies >= majority t then begin
      Hashtbl.remove t.ls_ops token;
      op.k ()
    end
  | None -> ()

(* ----- wiring ------------------------------------------------------------ *)

let handle t ~src msg =
  if veto_pu t msg then ()
  else if not (Paxos_utility.handle (pu t) ~src msg) then
    match msg with
    | Wire.Request { req_id; cmd; relaxed_read } ->
      handle_request t ~src ~req_id ~cmd ~relaxed_read
    | Wire.Forward { v } ->
      if t.iam_leader then begin
        Hashtbl.replace t.my_keys (Wire.value_key v) ();
        propose_value t v;
        (* The forwarding follower replies to its own client when *it*
           executes — possibly before we do: block local reads until
           our store reflects the forwarded write. *)
        t.read_floor <- max t.read_floor (t.next_inst - 1);
        if not (Queue.is_empty t.bat_buf) then t.bat_has_fwd <- true
      end
      else handle_value t v
    | Wire.Op_prepare_request { pn; must_be_fresh } ->
      on_prepare_request t ~src ~pn ~must_be_fresh
    | Wire.Op_prepare_response { pn; accepted } ->
      on_prepare_response t ~src ~pn ~accepted
    | Wire.Op_abandon { hpn } -> on_abandon t ~src ~hpn
    | Wire.Op_accept_request { inst; pn; v } -> on_accept_request t ~src ~inst ~pn ~v
    | Wire.Op_learn { inst; v } -> learn_value t ~inst v
    | Wire.Op_accept_batch { base; pn; vs } -> on_accept_batch t ~src ~base ~pn ~vs
    | Wire.Op_learn_batch { base; vs } -> on_learn_batch t ~base ~vs
    | Wire.Ls_req { token; from_ } -> on_ls_req t ~src ~token ~from_
    | Wire.Ls_reply { token; decisions } -> on_ls_reply t ~token ~decisions
    | Wire.Le_renew { pn; sent } -> if lease_on t then on_renew t ~src ~pn ~sent
    | Wire.Le_grant { pn; sent } -> if lease_on t then on_grant t ~src ~pn ~sent
    | Wire.Reply _ | Wire.Mp_prepare _ | Wire.Mp_promise _ | Wire.Mp_reject _
    | Wire.Mp_accept _ | Wire.Mp_learn _ | Wire.Tp_prepare _ | Wire.Tp_ack _
    | Wire.Tp_commit _ | Wire.Tp_commit_ack _ | Wire.Tp_rollback _ | Wire.Tp_nack _
    | Wire.Pu_prepare _ | Wire.Pu_promise _ | Wire.Pu_reject _ | Wire.Pu_accept _
    | Wire.Pu_accepted _ | Wire.Pu_nack _ | Wire.Pu_learn _ | Wire.Pu_read _
    | Wire.Pu_read_reply _ | Wire.Bp_prepare _ | Wire.Bp_promise _ | Wire.Bp_reject _ | Wire.Bp_accept _ | Wire.Bp_learn _ | Wire.Mn_accept _ | Wire.Mn_learn _ | Wire.Cp_accept _ | Wire.Cp_accepted _ | Wire.Cp_learn _ | Wire.Cp_state _
    | Wire.Mp_accept_batch _ | Wire.Mp_learn_batch _ ->
      ()

let on_config_entry t ~cseq:_ entry =
  match entry with
  | Wire.Leader_change { leader; acceptor } ->
    t.env.Node_env.note_phase
      ~phase:(Printf.sprintf "1paxos:leader-change:%d" leader);
    t.cur_leader <- Some leader;
    if t.aa = Some t.self && acceptor <> t.self then t.acc_retired <- true;
    t.aa <- Some acceptor;
    t.ap_covered <- false;
    t.n_leader_changes <- t.n_leader_changes + 1;
    (* Also cancel a takeover still in flight ([becoming]): its prepare
       must not linger and promote us after this entry named someone
       else. *)
    if
      leader <> t.self
      && (t.iam_leader || ((not t.cfg.unsafe_stale_adoption) && t.becoming))
    then step_down t
  | Wire.Acceptor_change { acceptor; carried } ->
    t.env.Node_env.note_phase
      ~phase:(Printf.sprintf "1paxos:acceptor-change:%d" acceptor);
    (* The entry is the proof this node's acceptor tenure ended: the
       proposer vouched for our accepted set via [carried], so any
       acceptance we mint from here on would split the brain (the
       explorer's 36-choice counterexample in DESIGN.md §14). *)
    if t.aa = Some t.self && acceptor <> t.self then t.acc_retired <- true;
    t.aa <- Some acceptor;
    t.n_acceptor_changes <- t.n_acceptor_changes + 1;
    (* Every node registers the carried proposals so whichever node
       leads next re-proposes the same values (Lemma 2a). *)
    List.iter
      (fun (inst, v) ->
        if not (Replica_core.is_decided t.core ~inst) then
          Hashtbl.replace t.proposed inst v)
      carried;
    if acceptor = t.self then begin
      (* Installed as a fresh backup acceptor: any state left over from
         an earlier tenure belongs to an abandoned epoch. *)
      t.hpn <- Pn.bottom;
      Hashtbl.reset t.acc_ap;
      t.iam_fresh <- true;
      t.acc_retired <- false
    end;
    if t.cur_leader = Some t.self then begin
      (* Our own installation of a fresh backup: nobody can have adopted
         it yet, so its accepted set is empty — covered. *)
      t.expect_fresh <- true;
      t.ap_covered <- true
    end
    else t.ap_covered <- false;
    if t.iam_leader then t.iam_leader <- false
  | Wire.Epoch_change _ ->
    (* Cheap Paxos configuration entries never appear in a 1Paxos
       deployment's PaxosUtility log. *)
    ()

let validate_config config =
  let member id = Array.exists (fun r -> r = id) config.replicas in
  if Array.length config.replicas < 2 then
    invalid_arg "Onepaxos: need at least two replicas";
  if not (member config.initial_leader) then
    invalid_arg
      (Printf.sprintf "Onepaxos: initial_leader %d is not a replica"
         config.initial_leader);
  if not (member config.initial_acceptor) then
    invalid_arg
      (Printf.sprintf "Onepaxos: initial_acceptor %d is not a replica"
         config.initial_acceptor);
  if config.max_batch < 1 then
    invalid_arg "Onepaxos: max_batch must be >= 1";
  if config.window < 0 then invalid_arg "Onepaxos: window must be >= 0";
  if config.lease < 0 then invalid_arg "Onepaxos: lease must be >= 0";
  if config.lease_skew < 0 then
    invalid_arg "Onepaxos: lease_skew must be >= 0";
  if config.lease > 0 && config.lease_skew >= config.lease then
    invalid_arg "Onepaxos: lease_skew must be < lease"

let create ~env ~config =
  validate_config config;
  let t =
    {
      env;
      cfg = config;
      self = env.Node_env.id;
      core = Replica_core.create ~replica:env.Node_env.id;
      pu = None;
      iam_leader = false;
      aa = None;
      cur_leader = None;
      my_pn = Pn.bottom;
      pn_round = 0;
      expect_fresh = false;
      ap_covered = false;
      becoming = false;
      changing_acceptor = false;
      pending_prepare = None;
      prepare_deadline = None;
      proposed = Hashtbl.create 256;
      inflight = Hashtbl.create 256;
      next_inst = 0;
      pending = Queue.create ();
      outstanding = Hashtbl.create 64;
      my_keys = Hashtbl.create 64;
      bat_buf = Queue.create ();
      bat_keys = Hashtbl.create 64;
      bat_inflight = 0;
      bat_remaining = Hashtbl.create 32;
      slot_batch = Hashtbl.create 256;
      bat_timer = None;
      bat_overdue = false;
      hpn = Pn.bottom;
      iam_fresh = true;
      acc_ap = Hashtbl.create 256;
      acc_retired = false;
      ls_token = 0;
      ls_ops = Hashtbl.create 8;
      grant_holder = Pn.bottom;
      grant_until = 0;
      grants = Hashtbl.create 8;
      last_renew = -config.lease;
      n_lease_reads = 0;
      read_floor = -1;
      bat_has_fwd = false;
      n_leader_changes = 0;
      n_acceptor_changes = 0;
    }
  in
  let seed =
    [
      Wire.Leader_change
        { leader = config.initial_leader; acceptor = config.initial_acceptor };
      Wire.Acceptor_change { acceptor = config.initial_acceptor; carried = [] };
    ]
  in
  let pu =
    Paxos_utility.create ~env ~peers:config.replicas ~timeout:config.pu_timeout
      ~seed ~on_entry:(fun ~cseq entry -> on_config_entry t ~cseq entry)
  in
  t.pu <- Some pu;
  (* Seeds count as history, not as runtime role changes. *)
  t.n_leader_changes <- 0;
  t.n_acceptor_changes <- 0;
  t

let start t =
  if t.self = t.cfg.initial_leader then adopt_acceptor t;
  fd_loop t

(* ----- crash-recovery ---------------------------------------------------- *)

(* What a real 1Paxos deployment fsyncs before acting on it:
   - the learner's decided log (re-executed against a fresh store);
   - the acceptor registers hpn / ap / IamFresh — an acceptor that
     forgot an acceptance while its leader also crashed could let a new
     leader decide the same instance twice, so acceptances hit disk
     before the learns go out (the freshness handshake only protects
     against acceptors that lost state *silently*, i.e. outside this
     contract);
   - the proposal-number round, so a recovered proposer can never reuse
     a pn (two values under one (inst, pn) would corrupt learn tallies);
   - the PaxosUtility durable registers (see {!Paxos_utility.stable}).
   Leadership itself is NOT durable: a recovered node comes back as a
   follower and re-earns any role through the configuration log. *)
type stable = {
  st_decisions : (int * Wire.value) list;
  st_pn_round : int;
  st_hpn : Pn.t;
  st_iam_fresh : bool;
  st_acc_ap : (int * (Pn.t * Wire.value)) list;
  st_pu : Paxos_utility.stable;
}

let stable t =
  {
    st_decisions = Replica_core.decisions_from t.core ~from_:0;
    st_pn_round = t.pn_round;
    st_hpn = t.hpn;
    st_iam_fresh = t.iam_fresh;
    st_acc_ap = Hashtbl.fold (fun i s acc -> (i, s) :: acc) t.acc_ap [];
    st_pu = Paxos_utility.stable (pu t);
  }

let recover ~env ~config ~stable:st =
  validate_config config;
  let t =
    {
      env;
      cfg = config;
      self = env.Node_env.id;
      core = Replica_core.create ~replica:env.Node_env.id;
      pu = None;
      iam_leader = false;
      aa = None;
      cur_leader = None;
      my_pn = Pn.bottom;
      pn_round = 0;
      expect_fresh = false;
      ap_covered = false;
      becoming = false;
      changing_acceptor = false;
      pending_prepare = None;
      prepare_deadline = None;
      proposed = Hashtbl.create 256;
      inflight = Hashtbl.create 256;
      next_inst = 0;
      pending = Queue.create ();
      outstanding = Hashtbl.create 64;
      my_keys = Hashtbl.create 64;
      bat_buf = Queue.create ();
      bat_keys = Hashtbl.create 64;
      bat_inflight = 0;
      bat_remaining = Hashtbl.create 32;
      slot_batch = Hashtbl.create 256;
      bat_timer = None;
      bat_overdue = false;
      hpn = Pn.bottom;
      iam_fresh = true;
      acc_ap = Hashtbl.create 256;
      acc_retired = false;
      ls_token = 0;
      ls_ops = Hashtbl.create 8;
      grant_holder = Pn.bottom;
      grant_until = 0;
      grants = Hashtbl.create 8;
      last_renew = -config.lease;
      n_lease_reads = 0;
      read_floor = -1;
      bat_has_fwd = false;
      n_leader_changes = 0;
      n_acceptor_changes = 0;
    }
  in
  (* Re-execute the durable decided log against the fresh store. *)
  List.iter
    (fun (inst, v) -> ignore (Replica_core.learn t.core ~inst v))
    st.st_decisions;
  (* Replaying the configuration log rebuilds cur_leader / aa exactly as
     the pre-crash node derived them ([on_config_entry] runs for every
     recovered entry, including the seeds). *)
  let pu =
    Paxos_utility.recover ~env ~peers:config.replicas
      ~timeout:config.pu_timeout ~stable:st.st_pu
      ~on_entry:(fun ~cseq entry -> on_config_entry t ~cseq entry)
  in
  t.pu <- Some pu;
  (* The two seeded entries count as history, exactly as in [create]. *)
  t.n_leader_changes <- max 0 (t.n_leader_changes - 1);
  t.n_acceptor_changes <- max 0 (t.n_acceptor_changes - 1);
  (* An Acceptor_change naming us replayed above wiped the registers
     "fresh" — restore the durable post-entry reality on top. *)
  t.pn_round <- st.st_pn_round;
  t.hpn <- st.st_hpn;
  t.iam_fresh <- st.st_iam_fresh;
  Hashtbl.reset t.acc_ap;
  List.iter (fun (inst, s) -> Hashtbl.replace t.acc_ap inst s) st.st_acc_ap;
  (* Replay never re-earns roles: whatever the log says, we come back as
     a follower and leadership flows through the takeover machinery. *)
  t.iam_leader <- false;
  t.ap_covered <- false;
  (* Grants are volatile: we may have promised a lease just before the
     crash. Sit out one full window — refuse every renewal and veto
     every deposition ([Pn.bottom]'s owner matches nobody) until any
     pre-crash promise has provably expired. *)
  if config.lease > 0 then begin
    t.grant_holder <- Pn.bottom;
    t.grant_until <- env.Node_env.now () + config.lease
  end;
  bump_next_inst t;
  (* Rejoin: refresh the configuration view from a majority, then pull
     decisions we missed while dead; the failure detector restarts so a
     recovered ex-leader can still replace a dead acceptor if the
     configuration log still names it leader. *)
  Paxos_utility.sync pu (fun () ->
      learner_sync t (fun () -> bump_next_inst t));
  fd_loop t;
  t

let is_leader t = t.iam_leader
let believed_leader t = t.cur_leader
let active_acceptor t = t.aa
let replica_core t = t.core
let leader_changes t = t.n_leader_changes
let acceptor_changes t = t.n_acceptor_changes
let pending_count t = Queue.length t.pending
let lease_reads t = t.n_lease_reads
let holds_lease t = t.iam_leader && lease_on t && lease_valid t ~at:(now t)

let inject_acceptor_reset t =
  t.hpn <- Pn.bottom;
  Hashtbl.reset t.acc_ap;
  t.iam_fresh <- true

(* Structural fingerprint for the explorer's visited-state table. Covers
   every protocol-relevant field as pure data: hashtables are folded to
   sorted association lists so iteration order cannot leak into the
   hash, and absolute timestamps are made relative to the current clock
   (two states reachable at different absolute times but otherwise
   identical should collide). The env, timers and counters are
   excluded: timers are hashed by the explorer's own timer queues and
   counters are observability, not behaviour. *)
let digest t =
  let sorted_tbl tbl fold = fold tbl |> List.sort compare in
  let tbl_list tbl = sorted_tbl tbl (fun h -> Hashtbl.fold (fun k v l -> (k, v) :: l) h []) in
  let clock = now t in
  let rel at = at - clock in
  let rel_opt = function None -> None | Some at -> Some (rel at) in
  let roles =
    ( t.iam_leader, t.aa, t.cur_leader, t.my_pn, t.pn_round,
      (t.expect_fresh, t.ap_covered, t.becoming, t.changing_acceptor),
      t.pending_prepare, rel_opt t.prepare_deadline )
  in
  let proposer =
    ( tbl_list t.proposed, tbl_list t.inflight, t.next_inst,
      List.of_seq (Queue.to_seq t.pending),
      sorted_tbl t.outstanding (fun h ->
          Hashtbl.fold (fun i at l -> (i, rel at) :: l) h []),
      tbl_list t.my_keys )
  in
  let batching =
    ( List.of_seq (Queue.to_seq t.bat_buf), tbl_list t.bat_keys,
      t.bat_inflight,
      sorted_tbl t.bat_remaining (fun h ->
          Hashtbl.fold (fun b r l -> (b, !r) :: l) h []),
      tbl_list t.slot_batch, t.bat_timer <> None, t.bat_overdue,
      t.bat_has_fwd )
  in
  let acceptor = (t.hpn, t.iam_fresh, tbl_list t.acc_ap) in
  let learner = (t.ls_token, Hashtbl.length t.ls_ops) in
  let lease =
    ( t.grant_holder, rel t.grant_until,
      sorted_tbl t.grants (fun h ->
          Hashtbl.fold (fun src at l -> (src, rel at) :: l) h []),
      rel t.last_renew, t.read_floor )
  in
  Hashtbl.hash_param 1000 1000
    ( Replica_core.digest t.core, Paxos_utility.digest (pu t),
      roles, proposer, batching, acceptor, learner, lease )

(** Collapsed Multi-Paxos (the paper's main comparison point).

    Every replica plays proposer, acceptor and learner (Collapsed
    Paxos, §2.3). A stable leader runs phase 1 once; thereafter each
    client command costs one accept round: the leader sends
    [Mp_accept] to every acceptor, each acceptor broadcasts [Mp_learn]
    to every learner, and a learner commits on a majority of matching
    learns. On three replicas this is ten boundary-crossing messages
    per command — the count Figure 3 contrasts with 1Paxos's five —
    and the leader processes eight of them, which is why Multi-Paxos
    saturates at roughly half 1Paxos's throughput in Figure 8.

    Non-blocking: progress requires only a majority of replicas, so one
    slow replica out of three is tolerated. Leadership moves through
    phase 1 with a higher proposal number when a client fails over to
    another replica. *)

type config = {
  replicas : int array;  (** Machine node ids of all replicas. *)
  initial_leader : int;  (** Member of [replicas]. *)
  election_timeout : Ci_engine.Sim_time.t;
      (** Wait for a majority of promises before retrying with a higher
          number. *)
  relaxed_reads : bool;  (** Serve relaxed [Get]s from the local store. *)
  max_batch : int;
      (** Commands per batched proposal ([Mp_accept_batch]); [1] (the
          default) keeps the paper's one-command-per-message protocol
          byte-identical. *)
  batch_delay : Ci_engine.Sim_time.t;
      (** How long the leader holds a partial batch; [0] flushes
          immediately. *)
  window : int;
      (** Pipeline depth: maximum batches concurrently in flight; [0]
          (the default) leaves it unbounded, as in the paper's
          protocol. Setting it also activates the batching layer. *)
  lease : Ci_engine.Sim_time.t;
      (** Leader-lease duration; [0] (the default) disables leases and
          leaves the protocol byte-identical. When on, the leader
          broadcasts [Le_renew] every [lease / 3]; a replica that
          grants promises not to help elect a {e different} owner for
          [lease] on its own clock, and the leader serves linearizable
          [Get]/[Range] locally while a majority of echoed grants are
          younger than [sent + lease - lease_skew] on {e its} clock. *)
  lease_skew : Ci_engine.Sim_time.t;
      (** Assumed bound on clock-{e rate} divergence over one lease
          window (no absolute clock comparison ever happens). The
          leader retires each grant [lease_skew] early, so a follower
          whose clock runs fast by less than this still honors its
          promise beyond the leader's belief. Must be [< lease]. *)
}

val default_config : replicas:int array -> config
(** [default_config ~replicas] leads from [replicas.(0)] with timeouts
    suited to the multicore preset. *)

type t
(** One Multi-Paxos replica. *)

val create : env:Wire.t Ci_engine.Node_env.t -> config:config -> t
(** [create ~env ~config] initializes the replica on the node behind
    [env] (simulated or live). Raises [Invalid_argument] if
    [config.initial_leader] is not a member of [config.replicas], or if
    [max_batch < 1] / [window < 0]. *)

val start : t -> unit
(** [start t] makes the configured initial leader run phase 1 so the
    steady state needs no further prepares. *)

val handle : t -> src:int -> Wire.t -> unit
(** [handle t ~src msg] processes a client or protocol message. *)

val is_leader : t -> bool
(** [is_leader t] is whether this replica holds a majority-promised
    leadership. *)

val replica_core : t -> Replica_core.t
(** [replica_core t] exposes learner/executor state. *)

val elections : t -> int
(** [elections t] counts phase-1 rounds this replica initiated. *)

val pending_count : t -> int
(** [pending_count t] is the queued-but-unproposed command count. *)

val lease_reads : t -> int
(** [lease_reads t] counts reads this replica answered locally under a
    valid leader lease (skipping the accept round entirely). *)

val holds_lease : t -> bool
(** [holds_lease t] is whether this replica is leader {e and} a majority
    of grants are unexpired right now, i.e. a local read issued at this
    instant would be served without consensus. *)

(** {1 Crash-recovery} *)

type stable
(** The durable registers a real deployment fsyncs before answering:
    the learner's decided log, the acceptor's promise and accepted
    table, and the proposal-round counter. Leadership, elections,
    pending queues and learn tallies are volatile. *)

val stable : t -> stable
(** [stable t] snapshots the durable registers. *)

val recover :
  env:Wire.t Ci_engine.Node_env.t -> config:config -> stable:stable -> t
(** [recover ~env ~config ~stable] rebuilds a replica from its durable
    registers after a crash, on a fresh node environment. The recovered
    replica rejoins passively — it answers prepares and accepts from the
    restored registers and catches its decided log up through the next
    leader election's re-proposal range; it campaigns for leadership
    only when a client contacts it, exactly like any non-leader. *)

val digest : t -> int
(** [digest t] is a structural fingerprint of the replica's protocol
    state for the explorer's visited-state table; hashtables are hashed
    in sorted key order and timestamps relative to the current clock.
    Equal states always produce equal digests. *)

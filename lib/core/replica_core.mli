(** The learner and execution side every protocol replica shares.

    Records decided [(instance, value)] pairs, executes the contiguous
    prefix against the key-value store with client-session
    deduplication, and exposes the views the consistency checker and the
    leader-recovery paths need. *)

type executed = {
  inst : int;
  v : Wire.value;
  result : Ci_rsm.Command.result;
      (** Result of execution (from cache when the value is a duplicate
          of an already-executed client request). *)
}

type t
(** Mutable learner/executor state of one replica. *)

val create : replica:int -> t
(** [create ~replica] is an empty state tagged with the replica id. *)

val learn : t -> inst:int -> Wire.value -> executed list
(** [learn t ~inst v] records the decision and executes any newly
    contiguous instances, returning them in order. Re-learning the same
    value is a no-op ([[]]); learning a conflicting value is recorded as
    a violation (visible through [view]) and otherwise ignored. *)

val is_decided : t -> inst:int -> bool
(** [is_decided t ~inst] is whether [inst] has a decision. *)

val decided_value : t -> inst:int -> Wire.value option
(** [decided_value t ~inst] is the decision, if any. *)

val first_gap : t -> int
(** [first_gap t] is the smallest undecided instance. *)

val highest_decided : t -> int option
(** [highest_decided t] is the largest decided instance, if any. *)

val decisions_from : t -> from_:int -> (int * Wire.value) list
(** [decisions_from t ~from_] is all decisions with [inst >= from_],
    sorted (used by learner catch-up replies). *)

val cached_result : t -> client:int -> req_id:int -> Ci_rsm.Command.result option
(** [cached_result t ~client ~req_id] is the stored result if the
    request already executed. *)

val local_get : t -> key:int -> int option
(** [local_get t ~key] reads the replica's store directly — the relaxed
    local read of §7.5 (may be stale). *)

val local_read : t -> Ci_rsm.Command.t -> Ci_rsm.Command.result option
(** [local_read t cmd] answers a read-only command ([Get], [Range])
    straight from the replica's store, [None] for anything that would
    mutate it. Staleness is the caller's problem: relaxed reads accept
    it, lease reads prove freshness first. *)

val commits : t -> int
(** [commits t] is how many instances have been executed. *)

val view : t -> Wire.value Ci_rsm.Consistency.replica_view
(** [view t] is the snapshot the consistency checker consumes. *)

val digest : t -> int
(** [digest t] is a structural fingerprint of the decided log, store
    contents and executed prefix (the consistency {!view}), for the
    explorer's visited-state table. *)

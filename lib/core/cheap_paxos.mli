(** Cheap Paxos (§8): consensus with a reduced active acceptor set.

    Lamport and Massa's observation: since Paxos needs only f+1
    responsive acceptors, the other f can sit idle as {e auxiliaries}.
    The leader runs rounds against the current {e active} set only
    (full-set quorum within an epoch), which cuts messages per
    agreement; when an active acceptor is suspected, a majority of
    {e all} replicas votes a new epoch that excludes it, and the active
    set may shrink as far as the leader alone.

    The price is the liveness asymmetry the paper contrasts 1Paxos with:
    a new epoch's state must be handed off from a member of the {e
    current} active set. If the actives shrank to {r} and {e r} then
    fails, the system is stuck until {e r itself} recovers — the
    recovery of earlier-excluded replicas does not help, because only
    {e r} holds the "crucial last state". 1Paxos, whose backup
    acceptors are cold but whose {e data} lives in all learners,
    resumes as soon as {e any} majority is back. The test suite
    reproduces exactly this scenario.

    Scope: the epoch vote is a simple monotone ballot among all
    replicas (majority), faithful to the reconfiguration role
    auxiliaries play in the original protocol. *)

type config = {
  replicas : int array;  (** All machine node ids (2f+1). *)
  initial_actives : int list;
      (** Initial active set; its head is the leader. Must be non-empty
          and a subset of [replicas]. *)
  acceptor_timeout : Ci_engine.Sim_time.t;
      (** Outstanding-round age before the leader suspects an active. *)
  check_period : Ci_engine.Sim_time.t;  (** Failure-detector period. *)
  reconfig_timeout : Ci_engine.Sim_time.t;
      (** Retry period for epoch votes and state pulls. *)
}

val default_config : replicas:int array -> config
(** [default_config ~replicas] activates the first [f+1] replicas. *)

type t
(** One Cheap Paxos replica. *)

val create : env:Wire.t Ci_engine.Node_env.t -> config:config -> t
(** [create ~env ~config] initializes the replica. *)

val start : t -> unit
(** [start t] arms the failure detector. *)

val handle : t -> src:int -> Wire.t -> unit
(** [handle t ~src msg] processes a client or protocol message. *)

val replica_core : t -> Replica_core.t
(** [replica_core t] exposes learner/executor state. *)

val epoch : t -> int
(** [epoch t] is the replica's current epoch number. *)

val actives : t -> int list
(** [actives t] is the current active set (head = leader). *)

val is_leader : t -> bool
(** [is_leader t] is whether this replica heads the active set. *)

val reconfigs : t -> int
(** [reconfigs t] counts epoch changes this replica applied. *)

val digest : t -> int
(** [digest t] is a structural fingerprint of the replica's protocol
    state for the explorer's visited-state table; hashtables are hashed
    in sorted key order and timestamps relative to the current clock.
    Equal states always produce equal digests. *)

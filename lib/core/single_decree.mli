(** Single-decree Basic-Paxos (the Synod protocol of §2.3).

    One consensus instance over one value, with every node playing
    proposer, acceptor and learner. This is the textbook protocol the
    paper builds its exposition on; the repository uses it as a
    correctness reference: its safety properties are easy to state and
    to property-test under adversarial schedules, and PaxosUtility's
    behaviour must coincide with it on a single slot. *)

type t
(** One participant. *)

val create :
  env:Wire.t Ci_engine.Node_env.t ->
  peers:int array ->
  timeout:Ci_engine.Sim_time.t ->
  ?on_decide:(Wire.value -> unit) ->
  unit ->
  t
(** [create ~env ~peers ~timeout ~on_decide ()] attaches a participant.
    [on_decide] fires exactly once, when this node learns the decision. *)

val handle : t -> src:int -> Wire.t -> unit
(** [handle t ~src msg] processes a [Bp_*] message. *)

val propose : t -> Wire.value -> unit
(** [propose t v] advocates [v]. May be called on any participant, any
    number of times; retries internally with increasing proposal numbers
    until a decision is learned. The decided value is some proposed
    value, not necessarily [v]. *)

val decision : t -> Wire.value option
(** [decision t] is the value this node has learned, if any. *)
